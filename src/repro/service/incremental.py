"""Dirty-region incremental re-planning (the service tentpole).

The exact-replay strategy
-------------------------

The service pipeline is sequential and deterministic: nets are routed in
sorted name order against accumulating wire usage, then buffered in the
same order against accumulating ``b(v)`` and the shrinking ``p(v)``
field. Each net's result therefore depends on (a) its own pins/limit and
(b) the *prefix state* left by every net before it — plus, through
``p(v)``, the routes and limits of the nets after it.

Instead of patching the old plan in place, the incremental engine
*re-executes the walk* but replays cached results wherever the delta
provably cannot have changed them:

* **Route phase** — usage is reset and the walk re-books each net in
  order. A net is re-routed only if its pins changed or its cached
  search window (``4 x window_margin``, the maze router's largest
  windowed escalation — see :func:`repro.routing.ripup.net_window_box`)
  intersects the *route-dirty* tile set: tiles with changed ``W(e)``,
  tiles of removed/changed nets, and tiles of earlier nets whose reroute
  produced different edges. Every other net re-books its cached tree,
  which reconstructs the exact usage prefix its original search saw.
* **Buffer phase** — ``p(v)`` is rebuilt from the new routes/limits, and
  the Stage-3 walk replays each cached :class:`NetOutcome` unless the
  net is *buffer-dirty*: its route or limit changed, its tiles touch a
  tile with changed ``B(v)`` or changed ``p(v)`` contributions (seeded
  up front, because ``p(v)`` flows from later nets to earlier solves),
  or an earlier re-solved net moved a buffer onto one of its tiles
  (propagated during the walk, because ``b(v)`` flows forward).

By induction over the walk order the composed plan is the one
:func:`repro.service.engine.full_plan` would produce — with one known
approximation: a maze search that escalates to the *full grid* reads
outside its window box, so a dirty region the box test misses could in
principle change it. That gap is why the scheduler sample-verifies
incremental results against a scratch full plan and escalates on
mismatch (:mod:`repro.service.verify`).

All site bookings happen inside one :class:`SiteLedger` transaction and
the mutated :class:`PlanState` is restored from a backup if anything
raises, so a failed partial re-plan leaves the baseline untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.benchmarks.buffering_kernel import buffering_signature
from repro.obs import NULL_TRACER
from repro.routing.ripup import net_window_box
from repro.routing.tree import RouteTree
from repro.service.engine import (
    NetOutcome,
    PlanState,
    route_one,
    run_buffer_walk,
)
from repro.service.jobs import DeltaSpec, ScenarioSpec, apply_delta

Tile = Tuple[int, int]


@dataclass
class IncrementalStats:
    """What one incremental re-plan actually did."""

    signature: str
    seconds: float
    nets_total: int
    nets_rerouted: int
    nets_resolved: int
    nets_replayed: int
    dirty_tiles: int
    rerouted_nets: List[str] = field(default_factory=list)
    resolved_nets: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "signature": self.signature,
            "seconds": round(self.seconds, 6),
            "nets_total": self.nets_total,
            "nets_rerouted": self.nets_rerouted,
            "nets_resolved": self.nets_resolved,
            "nets_replayed": self.nets_replayed,
            "dirty_tiles": self.dirty_tiles,
        }


def _normalize(pins) -> Tuple[Tile, Tuple[Tile, ...]]:
    source, sinks = pins
    return tuple(source), tuple(tuple(s) for s in sinks)


def _box_hits(box, dirty: Set[Tile]) -> bool:
    x0, y0, x1, y1 = box
    return any(x0 <= t[0] <= x1 and y0 <= t[1] <= y1 for t in dirty)


def incremental_replan(
    state: PlanState,
    delta: DeltaSpec,
    tracer=None,
) -> IncrementalStats:
    """Apply ``delta`` to a cached baseline plan, in place.

    On success ``state`` holds the new plan (scenario, routes, outcomes,
    graph usage, signature). On any exception the backup is restored and
    the exception propagates — the baseline is never left half-planned.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    new_scenario = apply_delta(state.scenario, delta)
    backup = state.backup()
    try:
        with tracer.span("service.incremental_replan"):
            stats = _replay(state, new_scenario, tracer)
    except Exception:
        state.restore(backup)
        raise
    if tracer.enabled:
        tracer.gauge("service.dirty_nets", stats.nets_resolved)
        tracer.observe("service.incremental_seconds", stats.seconds)
    return stats


def _replay(
    state: PlanState, new_scenario: ScenarioSpec, tracer
) -> IncrementalStats:
    start = time.perf_counter()
    graph = state.graph
    config = state.config
    old_scenario = state.scenario
    old_routes = state.routes
    old_outcomes = state.outcomes

    old_nets = {k: _normalize(v) for k, v in old_scenario.nets().items()}
    new_nets = {k: _normalize(v) for k, v in new_scenario.nets().items()}
    order = sorted(new_nets)

    pins_changed = {
        name
        for name in new_nets
        if old_nets.get(name) != new_nets[name]
    }
    removed = set(old_nets) - set(new_nets)
    old_limits = old_scenario.limits(old_nets)
    new_limits = new_scenario.limits(order)
    limit_changed = {
        name
        for name in order
        if name in old_nets and old_limits[name] != new_limits[name]
    }

    # ---- install the new scenario's capacities and sites --------------- #
    old_capacity = graph.edge_capacity.copy()
    old_sites = graph.sites.copy()
    graph.reset_usage()
    graph.edge_capacity[:] = new_scenario.capacity
    for u, v, cap in new_scenario.capacity_overrides:
        graph.set_wire_capacity(tuple(u), tuple(v), cap)
    graph._notify_all_usage_changed()
    graph.sites[:] = new_scenario.effective_sites()
    graph._notify_all_sites_changed()

    capacity_dirty: Set[Tile] = set()
    for eid in np.nonzero(old_capacity != graph.edge_capacity)[0]:
        u, v = graph.edge_endpoints(int(eid))
        capacity_dirty.add(u)
        capacity_dirty.add(v)
    site_dirty: Set[Tile] = {
        (int(x), int(y))
        for x, y in zip(*np.nonzero(old_sites != graph.sites))
    }

    # ---- route phase --------------------------------------------------- #
    route_dirty: Set[Tile] = set(capacity_dirty)
    for name in removed | (pins_changed & set(old_nets)):
        route_dirty.update(old_routes[name].nodes)

    margin = 4 * config.window_margin
    routes: Dict[str, RouteTree] = {}
    rerouted: List[str] = []
    for name in order:
        cached = old_routes.get(name)
        needs_reroute = (
            name in pins_changed
            or cached is None
            or (
                route_dirty
                and _box_hits(net_window_box(graph, cached, margin), route_dirty)
            )
        )
        if not needs_reroute:
            cached.clear_buffers()  # rebooked bare; buffers re-booked below
            cached.add_usage(graph)
            routes[name] = cached
            continue
        source, sinks = new_nets[name]
        tree = route_one(graph, name, source, list(sinks), config, tracer=tracer)
        tree.add_usage(graph)
        routes[name] = tree
        changed = cached is None or _edges_differ(tree, cached)
        if changed:
            rerouted.append(name)
            if cached is not None:
                route_dirty.update(cached.nodes)
            route_dirty.update(tree.nodes)

    # ---- buffer phase -------------------------------------------------- #
    # Seed everything that perturbs B(v) or a p(v) contribution; solves
    # earlier in the order read p(v) from *later* nets, so this must be
    # complete before the walk starts. b(v) differences are discovered
    # and propagated as the walk commits (`on_solved`).
    buffer_dirty: Set[Tile] = set(site_dirty)
    for name in removed:
        buffer_dirty.update(old_routes[name].nodes)
    for name in limit_changed | (pins_changed & set(routes)):
        buffer_dirty.update(routes[name].nodes)
    for name in rerouted:
        if name in old_routes:
            buffer_dirty.update(old_routes[name].nodes)
        buffer_dirty.update(routes[name].nodes)

    forced = set(rerouted) | limit_changed | (pins_changed & set(routes))
    resolved: List[str] = []

    def replay_cb(name: str):
        if name in forced or name not in old_outcomes:
            return None
        if buffer_dirty and any(t in buffer_dirty for t in routes[name].nodes):
            return None
        return old_outcomes[name]

    def on_solved(name: str, outcome: NetOutcome) -> None:
        resolved.append(name)
        old = old_outcomes.get(name)
        new_counts = _spec_counts(outcome)
        old_counts = _spec_counts(old) if old is not None else {}
        if new_counts != old_counts:
            for tile in set(new_counts) ^ set(old_counts):
                buffer_dirty.add(tile)
            for tile in set(new_counts) & set(old_counts):
                if new_counts[tile] != old_counts[tile]:
                    buffer_dirty.add(tile)

    outcomes = run_buffer_walk(
        graph,
        routes,
        new_limits,
        order,
        config,
        tracer=tracer,
        replay=replay_cb,
        on_solved=on_solved,
    )

    failed = [n for n in order if not outcomes[n].meets]
    state.scenario = new_scenario
    state.routes = routes
    state.outcomes = outcomes
    state.signature = buffering_signature(routes, graph, failed)
    return IncrementalStats(
        signature=state.signature,
        seconds=time.perf_counter() - start,
        nets_total=len(order),
        nets_rerouted=len(rerouted),
        nets_resolved=len(resolved),
        nets_replayed=len(order) - len(resolved),
        dirty_tiles=len(buffer_dirty | route_dirty),
        rerouted_nets=rerouted,
        resolved_nets=resolved,
    )


def _edges_differ(a: RouteTree, b: RouteTree) -> bool:
    canon_a = sorted((min(u, v), max(u, v)) for u, v in a.edges())
    canon_b = sorted((min(u, v), max(u, v)) for u, v in b.edges())
    return canon_a != canon_b


def _spec_counts(outcome: NetOutcome) -> Dict[Tile, int]:
    counts: Dict[Tile, int] = {}
    for spec in outcome.specs:
        counts[spec.tile] = counts.get(spec.tile, 0) + 1
    return counts
