"""Typed job model for the planning service.

A *scenario* describes a complete, reproducible planning instance: the
tile grid, a generated netlist (the routing kernel's recipe), a buffer
site scatter, and a set of *macros* — rectangular blocked regions that
host no buffer sites (the paper's 9x9 cache stand-in). A *delta* is a
list of typed operations perturbing a scenario: move a macro, override
``B(v)`` or ``W(e)``, add or remove a net, change a net's ``L``.

Both halves are plain dataclasses with versioned JSON round-trips, so
they travel over the ``repro serve`` JSON-lines protocol and into
checkpoints unchanged. Scenario evolution is pure: applying a delta
yields a *new* :class:`ScenarioSpec`, and a scenario fully determines
the plan a full re-plan would produce — the property the incremental
engine's sampled verification relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.utils.rng import make_rng

JOB_SCHEMA_VERSION = 1

Tile = Tuple[int, int]


@lru_cache(maxsize=64)
def _generated_nets(
    grid: int, num_nets: int, capacity: int, seed: int
) -> "Dict[str, Tuple[Tile, Tuple[Tile, ...]]]":
    """The generated netlist for a scenario's identity fields, memoized.

    Regenerating the kernel netlist costs tens of milliseconds at the
    500-net scale and every plan/replay/sweep evaluation needs it, so
    scenarios sharing (grid, num_nets, capacity, seed) — e.g. every
    point of a budget sweep — generate once per process. Values are
    stored as immutable tuples; :meth:`ScenarioSpec.nets` hands out
    fresh sink lists so callers can't corrupt the cache.
    """
    from repro.benchmarks.routing_kernel import make_routing_scenario

    generated = make_routing_scenario(
        grid=grid, num_nets=num_nets, capacity=capacity, seed=seed
    ).nets
    return {
        name: (tuple(source), tuple(tuple(s) for s in sinks))
        for name, (source, sinks) in generated.items()
    }


# --------------------------------------------------------------------- #
# Scenario                                                              #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class MacroSpec:
    """A blocked rectangle of tiles (no buffer sites inside)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("macro dimensions must be >= 1")
        if self.x < 0 or self.y < 0:
            raise ConfigurationError("macro origin must be >= 0")

    def tiles(self, nx: int, ny: int) -> "frozenset[Tile]":
        """The macro's tiles, clipped to an ``nx`` x ``ny`` grid."""
        return frozenset(
            (x, y)
            for x in range(self.x, min(self.x + self.width, nx))
            for y in range(self.y, min(self.y + self.height, ny))
        )

    def as_list(self) -> List[int]:
        return [self.x, self.y, self.width, self.height]


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible planning instance.

    Attributes:
        grid: the die is ``grid`` x ``grid`` tiles (1mm tiles).
        num_nets: generated net count (the routing kernel's recipe,
            deterministic in ``seed``).
        capacity: uniform wire capacity ``W(e)``.
        seed: net-generation seed.
        length_limit: default ``L`` for every net.
        total_sites: buffer sites scattered uniformly (before blocking).
        site_seed: scatter seed.
        macros: blocked regions; sites inside are zeroed.
        added_nets: explicit extra nets, name -> (source, sinks).
        removed_nets: generated/added net names excluded from the plan.
        length_limits: per-net ``L`` overrides.
        site_overrides: per-tile ``B(v)`` overrides (applied after macros).
        capacity_overrides: per-edge ``W(e)`` overrides, keyed by the
            canonical ``(u, v)`` tile pair (``u < v``).
        buffer_library: named buffer library
            (:data:`repro.technology.LIBRARY_NAMES`) Stage 3 sizes over
            with the ``multi_type`` strategy; ``""`` keeps the config's
            library (and solver) untouched. Omitted from the JSON form
            when empty so legacy scenario keys are unchanged.
    """

    grid: int = 16
    num_nets: int = 120
    capacity: int = 8
    seed: int = 0
    length_limit: int = 5
    total_sites: int = 600
    site_seed: int = 0
    macros: Tuple[MacroSpec, ...] = ()
    added_nets: "Tuple[Tuple[str, Tile, Tuple[Tile, ...]], ...]" = ()
    removed_nets: "Tuple[str, ...]" = ()
    length_limits: "Tuple[Tuple[str, int], ...]" = ()
    site_overrides: "Tuple[Tuple[Tile, int], ...]" = ()
    capacity_overrides: "Tuple[Tuple[Tile, Tile, int], ...]" = ()
    buffer_library: str = ""

    def __post_init__(self) -> None:
        if self.grid < 2:
            raise ConfigurationError("grid must be >= 2")
        if self.num_nets < 0:
            raise ConfigurationError("num_nets must be >= 0")
        if self.capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if self.length_limit < 1:
            raise ConfigurationError("length_limit must be >= 1")
        if self.total_sites < 0:
            raise ConfigurationError("total_sites must be >= 0")
        if self.buffer_library:
            from repro.technology import LIBRARY_NAMES

            if self.buffer_library not in LIBRARY_NAMES:
                raise ConfigurationError(
                    f"unknown buffer library {self.buffer_library!r}; "
                    f"expected one of {LIBRARY_NAMES}"
                )

    # -- derived content ------------------------------------------------ #

    def base_sites(self) -> np.ndarray:
        """The ``(grid, grid)`` site scatter before macro blocking.

        Deterministic in ``site_seed``; macros and overrides are applied
        on top by :meth:`effective_sites`, so moving a macro restores the
        sites its old footprint was hiding.
        """
        rng = make_rng(self.site_seed)
        n = self.grid * self.grid
        counts = np.zeros(n, dtype=np.int64)
        if self.total_sites:
            picks = rng.integers(0, n, size=self.total_sites)
            counts += np.bincount(picks, minlength=n)
        return counts.reshape(self.grid, self.grid)

    def effective_sites(self) -> np.ndarray:
        """``B(v)`` for every tile: scatter, minus macros, plus overrides."""
        sites = self.base_sites().copy()
        for macro in self.macros:
            for (x, y) in macro.tiles(self.grid, self.grid):
                sites[x, y] = 0
        for (tile, count) in self.site_overrides:
            if count < 0:
                raise ConfigurationError("site override must be >= 0")
            sites[tile[0], tile[1]] = count
        return sites

    def nets(self) -> "Dict[str, Tuple[Tile, List[Tile]]]":
        """Net name -> (source, sinks), after adds and removals."""
        generated = _generated_nets(
            self.grid, self.num_nets, self.capacity, self.seed
        )
        out: Dict[str, Tuple[Tile, List[Tile]]] = {
            name: (source, list(sinks))
            for name, (source, sinks) in generated.items()
        }
        for name, source, sinks in self.added_nets:
            out[name] = (tuple(source), [tuple(s) for s in sinks])
        for name in self.removed_nets:
            out.pop(name, None)
        return out

    def limits(self, names) -> Dict[str, int]:
        """Per-net length limits for ``names`` (overrides over the default)."""
        overrides = dict(self.length_limits)
        return {n: overrides.get(n, self.length_limit) for n in names}

    # -- JSON ------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JOB_SCHEMA_VERSION,
            "grid": self.grid,
            "num_nets": self.num_nets,
            "capacity": self.capacity,
            "seed": self.seed,
            "length_limit": self.length_limit,
            "total_sites": self.total_sites,
            "site_seed": self.site_seed,
            "macros": [m.as_list() for m in self.macros],
            "added_nets": [
                [name, list(source), [list(s) for s in sinks]]
                for name, source, sinks in self.added_nets
            ],
            "removed_nets": list(self.removed_nets),
            "length_limits": [[n, l] for n, l in self.length_limits],
            "site_overrides": [
                [list(tile), count] for tile, count in self.site_overrides
            ],
            "capacity_overrides": [
                [list(u), list(v), cap] for u, v, cap in self.capacity_overrides
            ],
            # Only non-empty values are serialized: legacy scenarios keep
            # their payload bytes (and scenario keys) exactly.
            **({"buffer_library": self.buffer_library} if self.buffer_library else {}),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioSpec":
        if d.get("version") != JOB_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported scenario schema {d.get('version')!r}"
            )
        return cls(
            grid=d["grid"],
            num_nets=d["num_nets"],
            capacity=d["capacity"],
            seed=d["seed"],
            length_limit=d["length_limit"],
            total_sites=d["total_sites"],
            site_seed=d["site_seed"],
            macros=tuple(MacroSpec(*m) for m in d.get("macros", ())),
            added_nets=tuple(
                (name, tuple(source), tuple(tuple(s) for s in sinks))
                for name, source, sinks in d.get("added_nets", ())
            ),
            removed_nets=tuple(d.get("removed_nets", ())),
            length_limits=tuple(
                (n, l) for n, l in d.get("length_limits", ())
            ),
            site_overrides=tuple(
                (tuple(tile), count) for tile, count in d.get("site_overrides", ())
            ),
            capacity_overrides=tuple(
                (tuple(u), tuple(v), cap)
                for u, v, cap in d.get("capacity_overrides", ())
            ),
            buffer_library=d.get("buffer_library", ""),
        )


# --------------------------------------------------------------------- #
# Deltas                                                                #
# --------------------------------------------------------------------- #

#: Delta operation kinds and their required JSON fields.
DELTA_KINDS = {
    "move_macro": ("index", "x", "y"),
    "set_sites": ("tiles",),
    "set_capacity": ("edges",),
    "add_net": ("name", "source", "sinks"),
    "remove_net": ("name",),
    "set_length_limit": ("name", "limit"),
}


@dataclass(frozen=True)
class DeltaOp:
    """One perturbation of a scenario (see :data:`DELTA_KINDS`)."""

    kind: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise ConfigurationError(
                f"unknown delta kind {self.kind!r}; expected one of "
                f"{sorted(DELTA_KINDS)}"
            )
        missing = [k for k in DELTA_KINDS[self.kind] if k not in self.args]
        if missing:
            raise ConfigurationError(
                f"delta op {self.kind!r} is missing fields {missing}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.args}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DeltaOp":
        d = dict(d)
        kind = d.pop("kind", None)
        if not isinstance(kind, str):
            raise ConfigurationError("delta op needs a string 'kind'")
        return cls(kind=kind, args=d)


def move_macro(index: int, x: int, y: int) -> DeltaOp:
    """Move macro ``index`` so its lower-left tile is ``(x, y)``."""
    return DeltaOp("move_macro", {"index": index, "x": x, "y": y})


def set_sites(tiles: "List[Tuple[int, int, int]]") -> DeltaOp:
    """Override ``B(v)``: ``tiles`` is a list of ``(x, y, count)``."""
    return DeltaOp("set_sites", {"tiles": [list(t) for t in tiles]})


def set_capacity(edges: "List[Tuple[int, int, int, int, int]]") -> DeltaOp:
    """Override ``W(e)``: entries are ``(ux, uy, vx, vy, capacity)``."""
    return DeltaOp("set_capacity", {"edges": [list(e) for e in edges]})


def add_net(name: str, source: Tile, sinks: "List[Tile]") -> DeltaOp:
    return DeltaOp(
        "add_net",
        {"name": name, "source": list(source), "sinks": [list(s) for s in sinks]},
    )


def remove_net(name: str) -> DeltaOp:
    return DeltaOp("remove_net", {"name": name})


def set_length_limit(name: str, limit: int) -> DeltaOp:
    return DeltaOp("set_length_limit", {"name": name, "limit": limit})


@dataclass(frozen=True)
class DeltaSpec:
    """An ordered list of delta operations against a baseline scenario."""

    ops: Tuple[DeltaOp, ...] = ()

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError("a delta needs at least one operation")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JOB_SCHEMA_VERSION,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DeltaSpec":
        if d.get("version") != JOB_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported delta schema {d.get('version')!r}"
            )
        return cls(ops=tuple(DeltaOp.from_dict(op) for op in d.get("ops", ())))


def _canonical_edge(u: Tile, v: Tile) -> Tuple[Tile, Tile]:
    return (u, v) if u <= v else (v, u)


def apply_delta(spec: ScenarioSpec, delta: DeltaSpec) -> ScenarioSpec:
    """Pure scenario evolution: ``spec`` + ``delta`` -> new spec.

    The result is what a *full* re-plan of the perturbed design would be
    built from; the incremental engine must converge to the same plan.
    """
    macros = list(spec.macros)
    added = dict(
        (name, (source, sinks)) for name, source, sinks in spec.added_nets
    )
    removed = set(spec.removed_nets)
    limits = dict(spec.length_limits)
    site_over = dict(spec.site_overrides)
    cap_over = {
        _canonical_edge(u, v): cap for u, v, cap in spec.capacity_overrides
    }
    for op in delta.ops:
        a = op.args
        if op.kind == "move_macro":
            idx = a["index"]
            if not 0 <= idx < len(macros):
                raise ConfigurationError(
                    f"move_macro index {idx} out of range ({len(macros)} macros)"
                )
            macros[idx] = replace(macros[idx], x=a["x"], y=a["y"])
        elif op.kind == "set_sites":
            for x, y, count in a["tiles"]:
                site_over[(x, y)] = count
        elif op.kind == "set_capacity":
            for ux, uy, vx, vy, cap in a["edges"]:
                cap_over[_canonical_edge((ux, uy), (vx, vy))] = cap
        elif op.kind == "add_net":
            name = a["name"]
            removed.discard(name)
            added[name] = (
                tuple(a["source"]),
                tuple(tuple(s) for s in a["sinks"]),
            )
        elif op.kind == "remove_net":
            name = a["name"]
            added.pop(name, None)
            removed.add(name)
            limits.pop(name, None)
        elif op.kind == "set_length_limit":
            if a["limit"] < 1:
                raise ConfigurationError("length limit must be >= 1")
            limits[a["name"]] = a["limit"]
    return replace(
        spec,
        macros=tuple(macros),
        added_nets=tuple(
            (name, source, sinks) for name, (source, sinks) in sorted(added.items())
        ),
        removed_nets=tuple(sorted(removed)),
        length_limits=tuple(sorted(limits.items())),
        site_overrides=tuple(sorted(site_over.items())),
        capacity_overrides=tuple(
            (u, v, cap) for (u, v), cap in sorted(cap_over.items())
        ),
    )


# --------------------------------------------------------------------- #
# Jobs                                                                  #
# --------------------------------------------------------------------- #


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SHED = "shed"


#: Job kinds the scheduler understands.
JOB_KINDS = ("baseline", "delta")


@dataclass
class Job:
    """One unit of planning work.

    ``kind == "baseline"`` carries a scenario (and optionally a config
    dict); ``kind == "delta"`` carries a baseline id plus a delta, with
    ``mode`` choosing ``"incremental"`` (dirty-region replay, the
    default) or ``"full"`` (scratch re-plan of the evolved scenario).
    ``tenant`` names the submitting client for the fleet scheduler's
    weighted fair queueing; the single-process scheduler ignores it.
    """

    job_id: str
    kind: str
    scenario: Optional[ScenarioSpec] = None
    baseline_id: Optional[str] = None
    delta: Optional[DeltaSpec] = None
    mode: str = "incremental"
    config: Optional[Dict[str, Any]] = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ProtocolError(f"unknown job kind {self.kind!r}")
        if self.kind == "baseline" and self.scenario is None:
            raise ProtocolError("baseline job needs a scenario")
        if self.kind == "delta":
            if not self.baseline_id or self.delta is None:
                raise ProtocolError("delta job needs baseline_id and delta")
            if not isinstance(self.delta, DeltaSpec):
                raise ProtocolError(
                    "job delta must be a DeltaSpec (wrap single ops in "
                    "DeltaSpec(ops=(op,)))"
                )
            if self.mode not in ("incremental", "full"):
                raise ProtocolError(f"unknown delta mode {self.mode!r}")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ProtocolError("job tenant must be a non-empty string")


@dataclass
class JobRecord:
    """Mutable job lifecycle state kept by the scheduler."""

    job: Job
    status: JobStatus = JobStatus.QUEUED
    attempts: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued before the first execution attempt."""
        if self.started_at <= 0.0 or self.submitted_at <= 0.0:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job.job_id,
            "kind": self.job.kind,
            "status": self.status.value,
            "attempts": self.attempts,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out
