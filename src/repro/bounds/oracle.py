"""The epsilon-approximate buffered-MCF lower-bound oracle.

RABID is a heuristic; this module bounds how far its plans can be from
optimal. Following the multicommodity-flow formulation of buffered
global routing (Albrecht/Kahng/Mandoiu/Zelikovsky; see PAPERS.md), the
LP assigns each net a fractional combination of *buffered candidate
trees* subject to wire capacities ``W(e)`` and buffer-site capacities
``B(v)``, minimizing total cost (``wire_cost`` per tile edge +
``buffer_cost`` per repeater — the linear surrogate of the explore
metrics ``wirelength_tiles + buffers``).

The oracle never solves the LP exactly. It runs Garg-Konemann /
Fleischer multiplicative length updates — wire lengths ``l(e)`` and
site lengths ``s(v)`` both start at ``1/capacity`` and are multiplied
by ``1 + epsilon/capacity`` whenever an iteration's cheapest buffered
route crosses them — and then certifies a bound from LP duality alone:
for ANY nonnegative lengths and any ``theta >= 0``,

    LB(theta) = sum_i u_i(theta) - theta * D(l, s)

is a valid lower bound on every capacity-feasible fractional (hence
integral) solution, where ``u_i(theta)`` is the max-over-sinks cheapest
buffered *path* price under costs ``base + theta * length``
(:mod:`repro.bounds.pricing` — a path projection of any feasible tree)
and ``D = sum_e W(e) l(e) + sum_v B(v) s(v)``. ``LB(theta)`` is concave
in ``theta``, so a small deterministic grid search recovers nearly the
best certificate the final lengths support; ``theta = 0`` is always in
the grid and bounds even capacity-violating plans.

Two infeasibility certificates fall out of the same machinery:

* *structural*: a net whose pricing is infinite even over the whole
  grid has no buffered path satisfying the spacing rule at all — no
  plan can ever buffer it;
* *capacity*: ``lambda_lb = sum_i u_i(lengths only) / D > 1`` proves no
  fractional routing fits inside the capacities (the standard
  concurrent-flow dual bound), which triages all-infeasible sweeps.

The per-iteration cheapest routes double as candidate columns for
seeded randomized rounding (:mod:`repro.bounds.rounding`), making the
oracle a competing integral arm as well as a certificate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bounds.pricing import INF, PathPricer
from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER

Tile = Tuple[int, int]

#: Available lower-bound oracles (``RabidConfig.bound`` accepts these or
#: ``""`` for disabled).
BOUND_MODES = ("gk",)

#: Deterministic theta grid for the dual line search. Geometric spread
#: including 0 (the congestion-free bound, valid for any plan).
DEFAULT_THETA_GRID = (0.0, 0.015625, 0.0625, 0.25, 1.0, 4.0)


@dataclass
class BoundOptions:
    """Oracle parameters.

    Attributes:
        mode: which oracle; only ``"gk"`` exists today.
        epsilon: Garg-Konemann length-update aggressiveness (0, 1].
            Smaller epsilon, finer length evolution, tighter bound,
            more work.
        iterations: full pricing rounds of length updates.
        window_margin: pricing Dijkstra window margin (tiles).
        wire_cost: cost per tile edge in the LP objective.
        buffer_cost: cost per inserted repeater.
        seed: randomized-rounding seed.
        theta_grid: dual line-search grid; must contain 0.0.
        refine_iters: golden-section evaluations refining theta inside
            the bracket around the best grid point (``LB(theta)`` is
            concave, so the bracket contains the true peak). 0 keeps
            the plain grid search. The refined bound can only improve
            on the grid bound: the grid winner stays the incumbent
            until a refined theta beats it.
        triage: run the millisecond routability triage first and skip
            pricing entirely when it *certifies* infeasibility
            (counter ``triage.skips``).
    """

    mode: str = "gk"
    epsilon: float = 0.25
    iterations: int = 4
    window_margin: int = 10
    wire_cost: float = 1.0
    buffer_cost: float = 1.0
    seed: int = 0
    theta_grid: Tuple[float, ...] = DEFAULT_THETA_GRID
    refine_iters: int = 4
    triage: bool = False

    def __post_init__(self) -> None:
        if self.mode not in BOUND_MODES:
            raise ConfigurationError(
                f"unknown bound mode {self.mode!r}; expected one of "
                f"{BOUND_MODES}"
            )
        if not 0 < self.epsilon <= 1:
            raise ConfigurationError("epsilon must be in (0, 1]")
        if self.iterations < 1:
            raise ConfigurationError("bound needs at least one iteration")
        if self.wire_cost < 0 or self.buffer_cost < 0:
            raise ConfigurationError("costs must be >= 0")
        if 0.0 not in self.theta_grid:
            raise ConfigurationError("theta_grid must contain 0.0")
        if any(t < 0 for t in self.theta_grid):
            raise ConfigurationError("theta values must be >= 0")
        if self.refine_iters < 0:
            raise ConfigurationError("refine_iters must be >= 0")


@dataclass(frozen=True)
class Candidate:
    """One buffered route column generated during the length phase."""

    edges: Tuple[int, ...]
    buffers: Tuple[int, ...]
    cost: float


@dataclass
class BoundResult:
    """Everything the oracle certifies about one workload.

    ``lower_bound`` is ``None`` only when every net is structurally
    unpriceable; otherwise it bounds the total cost of the priceable
    nets (all of them, in the common case).
    """

    mode: str
    epsilon: float
    iterations: int
    theta: float
    lower_bound: Optional[float]
    unconstrained_bound: Optional[float]
    lambda_lb: float
    certified_infeasible: bool
    infeasible_reason: str  # "" | "structural" | "capacity" | "triage-*"
    wire_cost: float
    buffer_cost: float
    dual_load: float
    net_duals: Dict[str, float]
    structural_nets: List[str]
    edge_lengths: List[float] = field(repr=False)
    site_lengths: List[float] = field(repr=False)
    candidates: Dict[str, List[Tuple[Candidate, int]]] = field(repr=False)
    pricing_calls: int = 0
    seconds: float = 0.0

    def certificate(self) -> "Any":
        """The serializable dual certificate for this result."""
        from repro.bounds.certificate import BoundCertificate

        return BoundCertificate(
            mode=self.mode,
            epsilon=self.epsilon,
            iterations=self.iterations,
            theta=self.theta,
            lower_bound=self.lower_bound,
            unconstrained_bound=self.unconstrained_bound,
            lambda_lb=self.lambda_lb,
            certified_infeasible=self.certified_infeasible,
            infeasible_reason=self.infeasible_reason,
            wire_cost=self.wire_cost,
            buffer_cost=self.buffer_cost,
            dual_load=self.dual_load,
            edge_lengths={
                eid: value
                for eid, value in enumerate(self.edge_lengths)
                if value < INF
            },
            site_lengths={
                idx: value
                for idx, value in enumerate(self.site_lengths)
                if value < INF
            },
            net_duals=dict(self.net_duals),
            structural_nets=list(self.structural_nets),
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest (the CLI's ``--json`` payload core)."""
        return {
            "mode": self.mode,
            "epsilon": self.epsilon,
            "iterations": self.iterations,
            "theta": self.theta,
            "lower_bound": _round6(self.lower_bound),
            "unconstrained_bound": _round6(self.unconstrained_bound),
            "lambda_lb": _round6(self.lambda_lb),
            "certified_infeasible": self.certified_infeasible,
            "infeasible_reason": self.infeasible_reason,
            "structural_nets": list(self.structural_nets),
            "pricing_calls": self.pricing_calls,
            "seconds": round(self.seconds, 4),
        }


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def compute_bound(
    graph,
    nets: Dict[str, Tuple[Tile, Sequence[Tile]]],
    limits: Dict[str, int],
    options: "BoundOptions | None" = None,
    tracer=None,
) -> BoundResult:
    """Run the oracle on an explicit workload.

    Args:
        graph: a :class:`repro.tilegraph.TileGraph` carrying ``W(e)``
            and ``B(v)``; usage state is ignored (the bound is against
            plans built from scratch).
        nets: net name -> (source tile, sink tiles).
        limits: net name -> length limit ``L``.
    """
    options = options or BoundOptions()
    tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    pricer = PathPricer(graph, options.window_margin)
    # Plain Python lists: keeps the hot pricing loop free of numpy
    # scalar boxing and the result JSON-serializable.
    capacities = graph.edge_capacity.tolist()
    site_caps = graph.sites_flat.tolist()
    edge_lengths = [1.0 / cap if cap > 0 else INF for cap in capacities]
    site_lengths = [1.0 / cap if cap > 0 else INF for cap in site_caps]
    names = sorted(nets)
    structural: set = set()
    candidates: Dict[str, Dict[Tuple, List]] = {name: {} for name in names}
    pricing_calls = 0
    epsilon = options.epsilon

    # Phase 1: Garg-Konemann length evolution + column collection.
    with tracer.span("bound.lengths", nets=len(names)):
        for _ in range(options.iterations):
            for name in names:
                if name in structural:
                    continue
                source, sinks = nets[name]
                priced = pricer.price(
                    source, list(sinks), limits[name],
                    edge_lengths, site_lengths,
                    options.wire_cost, options.buffer_cost,
                    collect_paths=True,
                )
                pricing_calls += 1
                if not priced.reachable:
                    structural.add(name)
                    continue
                union_edges = sorted(
                    {e for p in priced.paths.values() for e in p.edges}
                )
                union_bufs = sorted(
                    {b for p in priced.paths.values() for b in p.buffers}
                )
                for eid in union_edges:
                    edge_lengths[eid] *= 1.0 + epsilon / capacities[eid]
                for idx in union_bufs:
                    site_lengths[idx] *= 1.0 + epsilon / site_caps[idx]
                column = (tuple(union_edges), tuple(union_bufs))
                slot = candidates[name].get(column)
                if slot is None:
                    cost = (
                        options.wire_cost * len(union_edges)
                        + options.buffer_cost * len(union_bufs)
                    )
                    candidates[name][column] = [
                        Candidate(column[0], column[1], cost), 1
                    ]
                else:
                    slot[1] += 1
            tracer.count("bound.iterations")

    # D = sum_e W(e) l(e) + sum_v B(v) s(v) over finite lengths.
    dual_load = sum(
        cap * length
        for cap, length in zip(capacities, edge_lengths)
        if length < INF
    ) + sum(
        cap * length
        for cap, length in zip(site_caps, site_lengths)
        if length < INF
    )

    # Phase 2: concave line search over theta for the best certificate.
    best_lb = -INF
    best_theta = 0.0
    best_duals: Dict[str, float] = {}
    unconstrained: Optional[float] = None
    lambda_numerator = 0.0
    with tracer.span("bound.linesearch", thetas=len(options.theta_grid)):
        for theta in sorted(set(options.theta_grid)):
            total = 0.0
            duals: Dict[str, float] = {}
            for name in names:
                if name in structural:
                    continue
                source, sinks = nets[name]
                priced = pricer.price(
                    source, list(sinks), limits[name],
                    edge_lengths, site_lengths,
                    options.wire_cost, options.buffer_cost,
                    scale=theta,
                )
                pricing_calls += 1
                value = priced.dual_value()
                if value >= INF:
                    structural.add(name)
                    continue
                duals[name] = value
                total += value
            lb = total - theta * dual_load
            if theta == 0.0:
                unconstrained = total if duals or not names else None
            if duals and lb > best_lb:
                best_lb = lb
                best_theta = theta
                best_duals = duals

        def _price_theta(theta: float) -> "Tuple[float, Dict[str, float]]":
            nonlocal pricing_calls
            total = 0.0
            duals: Dict[str, float] = {}
            for name in names:
                if name in structural:
                    continue
                source, sinks = nets[name]
                priced = pricer.price(
                    source, list(sinks), limits[name],
                    edge_lengths, site_lengths,
                    options.wire_cost, options.buffer_cost,
                    scale=theta,
                )
                pricing_calls += 1
                value = priced.dual_value()
                if value >= INF:
                    structural.add(name)
                    continue
                duals[name] = value
                total += value
            return total - theta * dual_load, duals

        # Golden-section refinement inside the bracket around the best
        # grid theta. LB(theta) is concave, so the peak lies between the
        # grid neighbours of the winner; the grid winner stays incumbent
        # unless a refined theta strictly beats it (refined LB >= grid
        # LB by construction, and the theta = 0 floor above is kept).
        if options.refine_iters >= 2 and best_duals:
            thetas = sorted(set(options.theta_grid))
            pos = thetas.index(best_theta)
            lo = thetas[pos - 1] if pos > 0 else best_theta
            hi = thetas[pos + 1] if pos + 1 < len(thetas) else best_theta
            if hi > lo:
                invphi = 0.6180339887498949
                a, b = lo, hi
                c = b - invphi * (b - a)
                d = a + invphi * (b - a)
                fc, dc = _price_theta(c)
                fd, dd = _price_theta(d)
                for probe, value, duals in ((c, fc, dc), (d, fd, dd)):
                    if duals and value > best_lb:
                        best_lb, best_theta, best_duals = value, probe, duals
                for _ in range(options.refine_iters - 2):
                    if fc >= fd:
                        b, d, fd, dd = d, c, fc, dc
                        c = b - invphi * (b - a)
                        fc, dc = _price_theta(c)
                        probe, value, duals = c, fc, dc
                    else:
                        a, c, fc, dc = c, d, fd, dd
                        d = a + invphi * (b - a)
                        fd, dd = _price_theta(d)
                        probe, value, duals = d, fd, dd
                    if duals and value > best_lb:
                        best_lb, best_theta, best_duals = value, probe, duals
                if tracer.enabled:
                    tracer.count("bound.refine_evals", options.refine_iters)
        # Concurrent-flow congestion bound: lengths only, no base costs.
        for name in names:
            if name in structural:
                continue
            source, sinks = nets[name]
            priced = pricer.price(
                source, list(sinks), limits[name],
                edge_lengths, site_lengths,
                wire_cost=0.0, buffer_cost=0.0,
            )
            pricing_calls += 1
            value = priced.dual_value()
            if value < INF:
                lambda_numerator += value
    lambda_lb = lambda_numerator / dual_load if dual_load > 0 else 0.0

    infeasible_reason = ""
    if structural:
        infeasible_reason = "structural"
    elif lambda_lb > 1.0 + 1e-9:
        infeasible_reason = "capacity"

    lower_bound = best_lb if best_lb > -INF else None
    result = BoundResult(
        mode=options.mode,
        epsilon=epsilon,
        iterations=options.iterations,
        theta=best_theta,
        lower_bound=lower_bound,
        unconstrained_bound=unconstrained,
        lambda_lb=lambda_lb,
        certified_infeasible=bool(infeasible_reason),
        infeasible_reason=infeasible_reason,
        wire_cost=options.wire_cost,
        buffer_cost=options.buffer_cost,
        dual_load=dual_load,
        net_duals=best_duals,
        structural_nets=sorted(structural),
        edge_lengths=edge_lengths,
        site_lengths=site_lengths,
        candidates={
            name: [
                (slot[0], slot[1])
                for _, slot in sorted(columns.items())
            ]
            for name, columns in candidates.items()
        },
        pricing_calls=pricing_calls,
        seconds=time.perf_counter() - start,
    )
    if tracer.enabled:
        tracer.count("bound.pricing_calls", pricing_calls)
        tracer.gauge("bound.lambda_lb", round(lambda_lb, 6))
        if lower_bound is not None:
            tracer.observe("bound.lower_bound", round(lower_bound, 6))
        tracer.observe("bound.seconds", result.seconds)
    return result


def bound_scenario(
    scenario,
    options: "BoundOptions | None" = None,
    tracer=None,
) -> BoundResult:
    """Oracle over a :class:`~repro.service.jobs.ScenarioSpec` workload.

    Builds the scenario's graph (capacities + site scatter) exactly as
    :func:`repro.service.engine.full_plan` would, then bounds the same
    nets under the same per-net length limits.

    With ``options.triage`` the millisecond routability triage runs
    first; a *certified* verdict (site or cut bound — proofs, not
    estimates) skips the pricing escalation entirely and returns an
    infeasibility-only result (``infeasible_reason = "triage-sites"`` /
    ``"triage-cut"``, counter ``triage.skips``).
    """
    from repro.service.engine import build_graph  # avoid import cycle

    options = options or BoundOptions()
    tracer = tracer if tracer is not None else NULL_TRACER
    if options.triage:
        from repro.workloads.triage import triage_scenario

        verdict = triage_scenario(scenario, tracer=tracer)
        if verdict.certified_infeasible:
            if tracer.enabled:
                tracer.count("triage.skips")
            return BoundResult(
                mode=options.mode,
                epsilon=options.epsilon,
                iterations=0,
                theta=0.0,
                lower_bound=None,
                unconstrained_bound=None,
                lambda_lb=0.0,
                certified_infeasible=True,
                infeasible_reason=f"triage-{verdict.infeasible_reason}",
                wire_cost=options.wire_cost,
                buffer_cost=options.buffer_cost,
                dual_load=0.0,
                net_duals={},
                structural_nets=[],
                edge_lengths=[],
                site_lengths=[],
                candidates={},
                pricing_calls=0,
                seconds=verdict.seconds,
            )
    graph = build_graph(scenario)
    nets = scenario.nets()
    limits = scenario.limits(sorted(nets))
    return compute_bound(graph, nets, limits, options, tracer=tracer)
