"""Seeded randomized rounding of the oracle's fractional columns.

The Garg-Konemann phase leaves each net a small set of buffered
candidate routes weighted by how often the length evolution picked
them. Rounding samples one column per net with those weights — the
classic randomized-rounding step — giving a concrete integral plan
whose cost competes with RABID's own and whose overflow diagnoses how
much the fractional optimum relies on splitting flow.

Determinism is a contract: nets are visited in sorted-name order, the
candidate list per net is canonically ordered, and every draw comes
from one :func:`repro.utils.rng.make_rng` stream derived from the
caller's seed — so the rounded plan is byte-identical across processes
and worker counts (the sweep-level identity the explore tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.bounds.oracle import Candidate
from repro.obs import NULL_TRACER
from repro.utils.rng import make_rng


@dataclass
class RoundedPlan:
    """The integral plan sampled from the fractional solution."""

    #: net name -> chosen candidate (sorted-name order preserved).
    choices: Dict[str, Candidate]
    #: nets with no candidate column (structurally unpriceable).
    unrouted: List[str]
    total_cost: float
    wire_overflow: int
    site_overflow: int
    max_wire_congestion: float

    def summary(self) -> Dict[str, object]:
        return {
            "nets": len(self.choices),
            "unrouted": list(self.unrouted),
            "total_cost": round(self.total_cost, 6),
            "wire_overflow": self.wire_overflow,
            "site_overflow": self.site_overflow,
            "max_wire_congestion": round(self.max_wire_congestion, 6),
        }


def round_candidates(
    graph,
    candidates: Dict[str, List[Tuple[Candidate, int]]],
    seed: int = 0,
    tracer=None,
) -> RoundedPlan:
    """Sample one column per net, weighted by iteration frequency.

    ``candidates`` is :attr:`repro.bounds.oracle.BoundResult.candidates`
    (column, pick-count pairs in canonical order). The graph supplies
    capacities for the overflow report; its usage state is untouched.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    rng = make_rng(seed)
    wire_capacity = graph.edge_capacity
    site_capacity = graph.sites_flat
    wire_usage = np.zeros_like(wire_capacity)
    site_usage = np.zeros_like(site_capacity)
    choices: Dict[str, Candidate] = {}
    unrouted: List[str] = []
    total_cost = 0.0
    with tracer.span("bound.rounding", nets=len(candidates)):
        for name in sorted(candidates):
            columns = candidates[name]
            if not columns:
                unrouted.append(name)
                continue
            if len(columns) == 1:
                chosen = columns[0][0]
            else:
                weights = np.array(
                    [count for _, count in columns], dtype=np.float64
                )
                index = int(
                    rng.choice(len(columns), p=weights / weights.sum())
                )
                chosen = columns[index][0]
            choices[name] = chosen
            total_cost += chosen.cost
            for eid in chosen.edges:
                wire_usage[eid] += 1
            for idx in chosen.buffers:
                site_usage[idx] += 1
    wire_over = int(
        np.maximum(wire_usage - wire_capacity, 0)[wire_capacity > 0].sum()
    )
    site_over = int(
        np.maximum(site_usage - site_capacity, 0)[site_capacity > 0].sum()
    )
    positive = wire_capacity > 0
    max_congestion = (
        float((wire_usage[positive] / wire_capacity[positive]).max())
        if positive.any()
        else 0.0
    )
    plan = RoundedPlan(
        choices=choices,
        unrouted=unrouted,
        total_cost=total_cost,
        wire_overflow=wire_over,
        site_overflow=site_over,
        max_wire_congestion=max_congestion,
    )
    if tracer.enabled:
        tracer.gauge("bound.rounded_cost", round(total_cost, 6))
        tracer.gauge("bound.rounded_overflow", wire_over)
    return plan
