"""Certified lower bounds for buffered global routing.

RABID is fast but heuristic; this package answers "how far from
optimal?" with an epsilon-approximate buffered multicommodity-flow
oracle (:mod:`repro.bounds.oracle`): Garg-Konemann length updates over
buffered candidate routes priced by a resource-constrained Dijkstra
(:mod:`repro.bounds.pricing`), a serializable dual certificate anyone
can re-verify (:mod:`repro.bounds.certificate`), seeded randomized
rounding into a competing integral plan (:mod:`repro.bounds.rounding`),
and per-scenario ``optimality_gap`` metrics for the explore subsystem
(:mod:`repro.bounds.gap`).

Entry points: ``repro bound`` on the CLI, ``RabidConfig(bound="gk")``
for sweeps, :func:`bound_scenario` / :func:`compute_bound` in code. See
``docs/ALGORITHMS.md`` for the math.
"""

from repro.bounds.certificate import (
    BOUND_CERT_SCHEMA_VERSION,
    BoundCertificate,
    load_certificate,
    save_certificate,
    verify_certificate,
)
from repro.bounds.gap import gap_metrics, plan_surrogate_cost
from repro.bounds.oracle import (
    BOUND_MODES,
    BoundOptions,
    BoundResult,
    Candidate,
    bound_scenario,
    compute_bound,
)
from repro.bounds.pricing import NetPricing, PathPricer, PricedPath
from repro.bounds.rounding import RoundedPlan, round_candidates

__all__ = [
    "BOUND_CERT_SCHEMA_VERSION",
    "BOUND_MODES",
    "BoundCertificate",
    "BoundOptions",
    "BoundResult",
    "Candidate",
    "NetPricing",
    "PathPricer",
    "PricedPath",
    "RoundedPlan",
    "bound_scenario",
    "compute_bound",
    "gap_metrics",
    "load_certificate",
    "plan_surrogate_cost",
    "round_candidates",
    "save_certificate",
    "verify_certificate",
]
