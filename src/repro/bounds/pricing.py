"""Column-generation pricing: cheapest *buffered* source-sink paths.

The lower-bound oracle (:mod:`repro.bounds.oracle`) prices candidate
buffered routes against the current Garg-Konemann dual lengths. The
pricing problem is a resource-constrained shortest path on the tile
graph: a path from the net's source to a sink, broken by repeaters so
that no gate (driver or buffer) drives more than ``L`` tiles of wire —
the per-path projection of the repo's length rule
(:func:`repro.core.length_rule.net_meets_length_rule` bounds each
gate's *total* driven length, so every source-sink path inside a
feasible tree is itself a feasible buffered path; pricing over paths
therefore under-approximates trees, exactly what a lower bound needs).

The search runs Dijkstra over layered states ``(tile, d)`` where ``d``
is the tile distance since the last gate:

* a wire step to a neighbor costs ``wire_cost + scale * l(e)`` and
  advances ``d`` by one (blocked when ``d + 1 > L``);
* inserting a buffer at the current tile costs
  ``buffer_cost + scale * s(v)`` and resets ``d`` to zero — allowed
  only on tiles with ``B(v) > 0`` sites;
* zero-capacity edges and zero-site tiles are never used.

One Dijkstra per net prices every sink at once. The search is windowed
like :mod:`repro.routing.maze` (bounding box of the pins plus a margin,
escalating to the whole grid before declaring a sink unreachable), so
an infinite price is a *structural* certificate: no buffered path obeys
the spacing rule given the site placement at any congestion level.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.tilegraph.graph import TileGraph

Tile = Tuple[int, int]

INF = float("inf")


@dataclass(frozen=True)
class PricedPath:
    """One sink's cheapest buffered path under the current lengths."""

    sink: Tile
    cost: float
    #: flat edge ids along the path (source -> sink order not guaranteed).
    edges: Tuple[int, ...]
    #: flat tile indices where the path inserts a buffer.
    buffers: Tuple[int, ...]


@dataclass
class NetPricing:
    """All sinks of one net, priced by a single layered Dijkstra."""

    source: Tile
    costs: Dict[Tile, float]
    paths: Dict[Tile, PricedPath]

    @property
    def reachable(self) -> bool:
        return all(c < INF for c in self.costs.values())

    def dual_value(self) -> float:
        """``u_i``: the max-over-sinks path bound (INF when unreachable).

        Any feasible buffered tree contains, per sink, a feasible
        buffered path of no greater cost, so the *maximum* over sinks of
        the per-sink minima lower-bounds every feasible tree's cost.
        """
        return max(self.costs.values()) if self.costs else 0.0


class PathPricer:
    """Reusable layered-Dijkstra kernel over one graph.

    Scratch arrays are allocated per call (sizes depend on the window
    and the net's length limit); the flat adjacency is built once.
    """

    def __init__(self, graph: TileGraph, window_margin: int = 10) -> None:
        if window_margin < 0:
            raise ConfigurationError("window_margin must be >= 0")
        self.graph = graph
        self.flat = graph.flat()
        self.window_margin = window_margin
        self._sites = graph.sites_flat

    # ------------------------------------------------------------------ #

    def price(
        self,
        source: Tile,
        sinks: Sequence[Tile],
        length_limit: int,
        edge_lengths: Sequence[float],
        site_lengths: Sequence[float],
        wire_cost: float = 1.0,
        buffer_cost: float = 1.0,
        scale: float = 1.0,
        collect_paths: bool = False,
    ) -> NetPricing:
        """Price every sink of one net under the given dual lengths.

        ``scale`` multiplies the dual terms only (the theta of the
        oracle's line search); base ``wire_cost``/``buffer_cost`` are
        charged per edge / per buffer regardless.
        """
        if length_limit < 1:
            raise ConfigurationError("length_limit must be >= 1")
        flat = self.flat
        margins: List[int] = []
        whole = max(flat.nx, flat.ny)
        for margin in (self.window_margin, self.window_margin * 4, whole):
            if margin not in margins:
                margins.append(margin)
        result: Optional[NetPricing] = None
        for margin in margins:
            result = self._search(
                source, sinks, length_limit, edge_lengths, site_lengths,
                wire_cost, buffer_cost, scale, margin, collect_paths,
            )
            if result.reachable:
                return result
        assert result is not None
        return result

    # ------------------------------------------------------------------ #

    def _search(
        self,
        source: Tile,
        sinks: Sequence[Tile],
        length_limit: int,
        edge_lengths: Sequence[float],
        site_lengths: Sequence[float],
        wire_cost: float,
        buffer_cost: float,
        scale: float,
        margin: int,
        collect_paths: bool,
    ) -> NetPricing:
        flat = self.flat
        ny = flat.ny
        sites = self._sites
        layers = length_limit + 1
        num_states = flat.num_tiles * layers

        xs = [source[0], *(s[0] for s in sinks)]
        ys = [source[1], *(s[1] for s in sinks)]
        x_lo = max(0, min(xs) - margin)
        x_hi = min(flat.nx - 1, max(xs) + margin)
        y_lo = max(0, min(ys) - margin)
        y_hi = min(flat.ny - 1, max(ys) + margin)
        tile_x = flat.tile_x
        tile_y = flat.tile_y

        dist = [INF] * num_states
        parent = [-1] * num_states if collect_paths else None
        via = [-1] * num_states if collect_paths else None

        src_idx = source[0] * ny + source[1]
        start = src_idx * layers  # (source, d=0)
        dist[start] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, start)]
        adj = flat.adj
        targets = {s[0] * ny + s[1] for s in sinks}
        remaining = {t: layers for t in targets}  # states left per target

        while heap:
            d_cur, state = heapq.heappop(heap)
            if d_cur > dist[state]:
                continue
            tile = state // layers
            depth = state - tile * layers
            if tile in remaining:
                remaining[tile] -= 1
                if remaining[tile] <= 0:
                    del remaining[tile]
                    if not remaining:
                        break
            # Buffer insertion: reset the spacing counter on a site tile.
            if depth > 0 and sites[tile] > 0:
                s_len = site_lengths[tile]
                if s_len < INF:
                    nd = d_cur + buffer_cost + scale * s_len
                    nstate = tile * layers
                    if nd < dist[nstate]:
                        dist[nstate] = nd
                        if collect_paths:
                            parent[nstate] = state
                            via[nstate] = -2  # buffer marker
                        heapq.heappush(heap, (nd, nstate))
            # Wire step: advance one tile, spend one unit of drive length.
            if depth + 1 >= layers:
                continue
            for nbr, eid in adj[tile]:
                if not (x_lo <= tile_x[nbr] <= x_hi and y_lo <= tile_y[nbr] <= y_hi):
                    continue
                e_len = edge_lengths[eid]
                if e_len >= INF:
                    continue
                nd = d_cur + wire_cost + scale * e_len
                nstate = nbr * layers + depth + 1
                if nd < dist[nstate]:
                    dist[nstate] = nd
                    if collect_paths:
                        parent[nstate] = state
                        via[nstate] = eid
                    heapq.heappush(heap, (nd, nstate))

        costs: Dict[Tile, float] = {}
        paths: Dict[Tile, PricedPath] = {}
        for sink in sinks:
            t_idx = sink[0] * ny + sink[1]
            base = t_idx * layers
            best_state = min(
                range(base, base + layers), key=lambda s: dist[s]
            )
            best = dist[best_state]
            costs[sink] = best
            if collect_paths and best < INF:
                edges: List[int] = []
                buffers: List[int] = []
                state = best_state
                while state != start and parent is not None:
                    step = via[state]
                    if step == -2:
                        buffers.append(state // layers)
                    else:
                        edges.append(step)
                    state = parent[state]
                paths[sink] = PricedPath(
                    sink=sink,
                    cost=best,
                    edges=tuple(reversed(edges)),
                    buffers=tuple(reversed(buffers)),
                )
        return NetPricing(source=source, costs=costs, paths=paths)
