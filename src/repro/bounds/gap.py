"""Per-scenario optimality-gap metrics for the explore subsystem.

The sweep executor calls :func:`gap_metrics` once per evaluated
scenario (when ``RabidConfig.bound`` is set) and merges the returned
keys into the scenario's metrics dict, so frontier reports and
``repro explore --metrics`` rows gain:

* ``lower_bound`` — the certified bound on ``wirelength_tiles +
  buffers`` (the linear surrogate both sides share);
* ``optimality_gap`` — ``(plan - bound) / bound``, i.e. "the RABID plan
  is within X of optimal"; ``None`` when no bound exists;
* ``certified_infeasible`` + ``infeasible_reason`` — the dual proof
  that no fractional (hence no integral) plan fits the capacities, the
  triage signal for all-infeasible sweeps;
* ``bound_lambda`` / ``bound_iterations`` — oracle telemetry.

The oracle is single-threaded and deterministic, so these metrics are
byte-identical no matter how many sweep workers evaluated the scenario.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bounds.oracle import BoundOptions, bound_scenario
from repro.obs import NULL_TRACER


def plan_surrogate_cost(metrics: Dict[str, Any]) -> float:
    """The plan-side value the bound is compared against."""
    return float(metrics["wirelength_tiles"]) + float(metrics["buffers"])


def gap_metrics(
    scenario,
    config,
    plan_metrics: Dict[str, Any],
    tracer=None,
) -> Dict[str, Any]:
    """Bound one scenario and derive its gap against the planned metrics."""
    tracer = tracer if tracer is not None else NULL_TRACER
    options = BoundOptions(
        mode=config.bound,
        epsilon=config.bound_epsilon,
        window_margin=max(config.window_margin, 6),
    )
    result = bound_scenario(scenario, options, tracer=tracer)
    bound = result.lower_bound
    gap: Optional[float] = None
    if bound is not None:
        plan = plan_surrogate_cost(plan_metrics)
        gap = round((plan - bound) / max(bound, 1.0), 6)
        if tracer.enabled:
            tracer.observe("bound.gap", gap)
    return {
        "lower_bound": None if bound is None else round(bound, 6),
        "optimality_gap": gap,
        "certified_infeasible": result.certified_infeasible,
        "infeasible_reason": result.infeasible_reason,
        "bound_lambda": round(result.lambda_lb, 6),
        "bound_iterations": result.iterations,
    }
