"""Serializable dual certificates for the lower-bound oracle.

A :class:`BoundCertificate` is the self-contained proof object behind a
:class:`~repro.bounds.oracle.BoundResult`: the final dual lengths
(sparse, finite entries only), the chosen ``theta``, the per-net dual
values ``u_i``, and the claimed bound. Anyone holding the certificate
and the workload can re-check the claim without trusting the oracle:

* *dual feasibility*: each stored ``u_i`` must not exceed the true
  max-over-sinks cheapest buffered path price under the certificate's
  lengths (re-priced independently by :class:`~repro.bounds.pricing.PathPricer`);
* *arithmetic*: ``lower_bound <= sum_i u_i - theta * D`` with ``D``
  recomputed from the lengths and the graph's capacities.

Certificates serialize to versioned JSON (:data:`BOUND_CERT_SCHEMA_VERSION`)
following the same conventions as :mod:`repro.io.serialize`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bounds.pricing import INF, PathPricer
from repro.errors import ConfigurationError

Tile = Tuple[int, int]

BOUND_CERT_SCHEMA_VERSION = 1

#: Numeric slack for the verifier's comparisons (re-pricing reproduces
#: the oracle's floats, so only representation noise needs absorbing).
VERIFY_TOLERANCE = 1e-6


@dataclass
class BoundCertificate:
    """A dual-feasible length assignment plus the bound it certifies."""

    mode: str
    epsilon: float
    iterations: int
    theta: float
    lower_bound: Optional[float]
    unconstrained_bound: Optional[float]
    lambda_lb: float
    certified_infeasible: bool
    infeasible_reason: str
    wire_cost: float
    buffer_cost: float
    dual_load: float
    edge_lengths: Dict[int, float] = field(repr=False)
    site_lengths: Dict[int, float] = field(repr=False)
    net_duals: Dict[str, float] = field(repr=False)
    structural_nets: List[str] = field(default_factory=list)

    # -- JSON ---------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": BOUND_CERT_SCHEMA_VERSION,
            "mode": self.mode,
            "epsilon": self.epsilon,
            "iterations": self.iterations,
            "theta": self.theta,
            "lower_bound": self.lower_bound,
            "unconstrained_bound": self.unconstrained_bound,
            "lambda_lb": self.lambda_lb,
            "certified_infeasible": self.certified_infeasible,
            "infeasible_reason": self.infeasible_reason,
            "wire_cost": self.wire_cost,
            "buffer_cost": self.buffer_cost,
            "dual_load": self.dual_load,
            "edge_lengths": {
                str(eid): value for eid, value in self.edge_lengths.items()
            },
            "site_lengths": {
                str(idx): value for idx, value in self.site_lengths.items()
            },
            "net_duals": dict(self.net_duals),
            "structural_nets": list(self.structural_nets),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BoundCertificate":
        version = d.get("version")
        if version != BOUND_CERT_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported bound certificate version {version!r} "
                f"(expected {BOUND_CERT_SCHEMA_VERSION})"
            )
        return cls(
            mode=d["mode"],
            epsilon=d["epsilon"],
            iterations=d["iterations"],
            theta=d["theta"],
            lower_bound=d["lower_bound"],
            unconstrained_bound=d["unconstrained_bound"],
            lambda_lb=d["lambda_lb"],
            certified_infeasible=d["certified_infeasible"],
            infeasible_reason=d["infeasible_reason"],
            wire_cost=d["wire_cost"],
            buffer_cost=d["buffer_cost"],
            dual_load=d["dual_load"],
            edge_lengths={
                int(eid): value for eid, value in d["edge_lengths"].items()
            },
            site_lengths={
                int(idx): value for idx, value in d["site_lengths"].items()
            },
            net_duals=dict(d["net_duals"]),
            structural_nets=list(d.get("structural_nets", [])),
        )


def save_certificate(certificate: BoundCertificate, path: str) -> None:
    """Write the certificate as canonical JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(certificate.to_dict(), fh, sort_keys=True, indent=2)
        fh.write("\n")


def load_certificate(path: str) -> BoundCertificate:
    with open(path, "r", encoding="utf-8") as fh:
        return BoundCertificate.from_dict(json.load(fh))


def verify_certificate(
    certificate: BoundCertificate,
    graph,
    nets: Dict[str, Tuple[Tile, Sequence[Tile]]],
    limits: Dict[str, int],
    window_margin: int = 10,
    tolerance: float = VERIFY_TOLERANCE,
) -> Dict[str, Any]:
    """Independently re-check a certificate against its workload.

    Returns a report dict with ``ok`` (bool), the recomputed dual load,
    the worst per-net dual violation, and the re-derived bound. The
    check is one pricing sweep — the same cost as a single oracle
    iteration — and never trusts the certificate's own arithmetic.
    """
    pricer = PathPricer(graph, window_margin)
    num_edges = len(graph.edge_capacity)
    num_tiles = len(graph.sites_flat)
    edge_lengths = [INF] * num_edges
    for eid, value in certificate.edge_lengths.items():
        if not 0 <= eid < num_edges:
            return {"ok": False, "error": f"edge id {eid} out of range"}
        edge_lengths[eid] = value
    site_lengths = [INF] * num_tiles
    for idx, value in certificate.site_lengths.items():
        if not 0 <= idx < num_tiles:
            return {"ok": False, "error": f"tile {idx} out of range"}
        site_lengths[idx] = value
    if any(v < 0 for v in certificate.edge_lengths.values()) or any(
        v < 0 for v in certificate.site_lengths.values()
    ):
        return {"ok": False, "error": "negative dual length"}

    dual_load = sum(
        cap * edge_lengths[eid]
        for eid, cap in enumerate(graph.edge_capacity.tolist())
        if edge_lengths[eid] < INF
    ) + sum(
        cap * site_lengths[idx]
        for idx, cap in enumerate(graph.sites_flat.tolist())
        if site_lengths[idx] < INF
    )

    worst_violation = 0.0
    total_duals = 0.0
    checked = 0
    for name, claimed in sorted(certificate.net_duals.items()):
        if name not in nets:
            return {"ok": False, "error": f"unknown net {name!r}"}
        source, sinks = nets[name]
        priced = pricer.price(
            source, list(sinks), limits[name],
            edge_lengths, site_lengths,
            certificate.wire_cost, certificate.buffer_cost,
            scale=certificate.theta,
        )
        true_value = priced.dual_value()
        # Dual feasibility: the claimed u_i may not exceed the true
        # cheapest-path bound (claiming less only weakens the bound).
        worst_violation = max(worst_violation, claimed - true_value)
        total_duals += claimed
        checked += 1

    derived_bound = total_duals - certificate.theta * dual_load
    ok = worst_violation <= tolerance
    if certificate.lower_bound is not None:
        ok = ok and certificate.lower_bound <= derived_bound + tolerance
    return {
        "ok": ok,
        "nets_checked": checked,
        "worst_dual_violation": worst_violation,
        "dual_load": dual_load,
        "derived_bound": derived_bound,
        "claimed_bound": certificate.lower_bound,
    }
