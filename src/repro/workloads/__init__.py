"""Workload subsystem: scale ladder, streaming ECO traces, triage.

Three pieces grown for the ROADMAP's "scale ladder + streaming ECO
workload" item:

* :mod:`repro.workloads.registry` — named workload tiers (the
  ``ladder-*`` synthetic scale ladder and the ten Table-I paper
  circuits as square-grid stand-ins) resolvable to scenarios.
* :mod:`repro.workloads.trace` — seeded streaming ECO traces replayed
  through the incremental planning service, with divergence
  checkpoints against scratch full plans.
* :mod:`repro.workloads.triage` — millisecond routability triage
  (certificates + demand smearing) so full RABID runs are only
  launched on scenarios worth the budget.

See docs/WORKLOADS.md for the tier table, the trace grammar, the
divergence contract, and the triage accuracy caveats.
"""

from repro.workloads.registry import (
    WORKLOAD_SOURCES,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    list_workloads,
)
from repro.workloads.trace import (
    EVENT_MIX,
    CheckpointRecord,
    EventRecord,
    TraceEvent,
    TraceOptions,
    TraceReport,
    make_trace,
    replay_trace,
    run_workload_trace,
)
from repro.workloads.triage import (
    TRIAGE_MODES,
    VERDICTS,
    RoutabilityVerdict,
    TriageOptions,
    smear_demand,
    triage_scenario,
)

__all__ = [
    "WORKLOAD_SOURCES",
    "WORKLOADS",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "EVENT_MIX",
    "CheckpointRecord",
    "EventRecord",
    "TraceEvent",
    "TraceOptions",
    "TraceReport",
    "make_trace",
    "replay_trace",
    "run_workload_trace",
    "TRIAGE_MODES",
    "VERDICTS",
    "RoutabilityVerdict",
    "TriageOptions",
    "smear_demand",
    "triage_scenario",
]
