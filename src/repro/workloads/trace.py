"""Streaming ECO driver: seeded delta traces replayed through the service.

The paper's whole premise is *early, iterative* allocation: floorplans
churn (macros move, nets appear and vanish, budgets get edited) and the
planner must keep up incrementally. This module generates a long
randomized trace of :class:`~repro.service.jobs.DeltaSpec` events from
a seeded RNG, replays it through the incremental
:class:`~repro.service.scheduler.PlanningService` (or the sharded
:class:`~repro.service.fleet.FleetPlanningService` when ``workers >
1``), and measures what the ROADMAP asks for:

* steady-state incremental speedup vs per-event full re-planning,
* per-event latency percentiles (p50/p95/p99),
* **divergence-from-full-replan**: every ``checkpoint_every`` events
  the driver full-plans the folded scenario from scratch and records
  whether the buffering signature matches the incremental state — so
  drift is quantified, not assumed.

Determinism contract: the same ``(scenario, events, seed)`` produce the
same trace, and replaying it with the same worker count produces a
byte-identical signature map (the incremental engine is exact).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER
from repro.service.jobs import (
    DeltaSpec,
    Job,
    JobStatus,
    ScenarioSpec,
    add_net,
    apply_delta,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)
from repro.utils.rng import make_rng

#: Relative weights of the six ECO event kinds.
EVENT_MIX: Tuple[Tuple[str, float], ...] = (
    ("move_macro", 0.18),
    ("add_net", 0.22),
    ("remove_net", 0.12),
    ("set_sites", 0.20),
    ("set_capacity", 0.18),
    ("set_length_limit", 0.10),
)


@dataclass(frozen=True)
class TraceOptions:
    """Trace generation + replay knobs.

    Attributes:
        events: trace length.
        seed: RNG seed for the event stream.
        checkpoint_every: full re-plan divergence checkpoint period
            (0 disables checkpoints).
        workers: 1 runs the in-process scheduler; >1 the process fleet.
        job_timeout: per-job wall-clock budget handed to the service.
    """

    events: int = 100
    seed: int = 0
    checkpoint_every: int = 25
    workers: int = 1
    job_timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ConfigurationError("trace needs at least one event")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be > 0")


@dataclass(frozen=True)
class TraceEvent:
    """One generated ECO event."""

    index: int
    kind: str
    delta: DeltaSpec


@dataclass(frozen=True)
class EventRecord:
    """Measured replay of one event."""

    index: int
    kind: str
    seconds: float  # service-side replan compute seconds
    latency: float  # wall latency from start to finish of the job
    queue_wait: float
    signature: str
    speedup_vs_full: Optional[float] = None
    nets_rerouted: Optional[int] = None


@dataclass(frozen=True)
class CheckpointRecord:
    """One divergence-from-full-replan checkpoint."""

    event_index: int
    signature_incremental: str
    signature_full: str
    match: bool
    seconds_full: float
    buffers_full: int
    failed_full: int
    buffers_incremental: Optional[int] = None
    cost_delta: Optional[int] = None  # full buffers - incremental buffers


def make_trace(
    scenario: ScenarioSpec,
    options: Optional[TraceOptions] = None,
) -> List[TraceEvent]:
    """Generate a deterministic ECO event trace for ``scenario``.

    Every event is valid against the scenario folded up to that point:
    macros move within the die, only live ECO nets are removed, length
    limits touch only the stable generated netlist. Kind draws fall
    back deterministically when a kind is inapplicable (no macros, no
    ECO nets yet).
    """
    options = options or TraceOptions()
    rng = make_rng(options.seed)
    grid = scenario.grid
    kinds = [k for k, _ in EVENT_MIX]
    weights = [w for _, w in EVENT_MIX]
    total = sum(weights)
    probs = [w / total for w in weights]

    folded = scenario
    live_eco: List[str] = []
    eco_counter = 0
    events: List[TraceEvent] = []
    for index in range(options.events):
        kind = str(rng.choice(kinds, p=probs))
        if kind == "move_macro" and not folded.macros:
            kind = "set_sites"
        if kind == "remove_net" and not live_eco:
            kind = "add_net"
        if kind == "move_macro":
            # ECO moves are local nudges, not teleports: floorplan
            # iterations shift a macro by a few tiles, which also keeps
            # the incremental dirty region (and event latency) bounded.
            idx = int(rng.integers(len(folded.macros)))
            macro = folded.macros[idx]
            step = max(1, grid // 8)
            x = macro.x + int(rng.integers(-step, step + 1))
            y = macro.y + int(rng.integers(-step, step + 1))
            x = min(max(0, x), max(0, grid - macro.width))
            y = min(max(0, y), max(0, grid - macro.height))
            if (x, y) == (macro.x, macro.y):
                x = min(max(0, x + 1), max(0, grid - macro.width))
            op = move_macro(idx, x, y)
        elif kind == "add_net":
            # "zeco-" sorts after the generated "net*" names, so ECO
            # nets join the deterministic walk order *behind* the
            # existing netlist: their routes see the baseline's usage
            # as a fixed prefix instead of perturbing it, which keeps
            # the incremental replay local (new commitments are planned
            # around existing ones — the paper's ECO model).
            name = f"zeco-{eco_counter:05d}"
            eco_counter += 1
            sx = int(rng.integers(grid))
            sy = int(rng.integers(grid))
            sinks = []
            for _ in range(1 + int(rng.integers(3))):
                tx = min(grid - 1, max(0, sx + int(rng.integers(-6, 7))))
                ty = min(grid - 1, max(0, sy + int(rng.integers(-6, 7))))
                if (tx, ty) == (sx, sy):
                    tx = (tx + 1) % grid
                sinks.append((tx, ty))
            op = add_net(name, (sx, sy), sinks)
            live_eco.append(name)
        elif kind == "remove_net":
            pick = int(rng.integers(len(live_eco)))
            name = live_eco.pop(pick)
            op = remove_net(name)
        elif kind == "set_sites":
            tiles = []
            for _ in range(1 + int(rng.integers(3))):
                tiles.append(
                    (
                        int(rng.integers(grid)),
                        int(rng.integers(grid)),
                        int(rng.integers(7)),
                    )
                )
            op = set_sites(tiles)
        elif kind == "set_capacity":
            if int(rng.integers(2)) and grid > 1:
                x = int(rng.integers(grid - 1))
                y = int(rng.integers(grid))
                edge = (x, y, x + 1, y)
            else:
                x = int(rng.integers(grid))
                y = int(rng.integers(grid - 1))
                edge = (x, y, x, y + 1)
            cap = max(1, scenario.capacity + int(rng.integers(-3, 4)))
            op = set_capacity([edge + (cap,)])
        else:  # set_length_limit on the stable generated netlist
            name = f"net{int(rng.integers(scenario.num_nets))}"
            limit = max(2, scenario.length_limit + int(rng.integers(-1, 4)))
            op = set_length_limit(name, limit)
        delta = DeltaSpec(ops=(op,))
        folded = apply_delta(folded, delta)
        events.append(TraceEvent(index=index, kind=kind, delta=delta))
    return events


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class TraceReport:
    """Everything one replayed trace measured."""

    workload: str
    grid: int
    nets: int
    events: int
    workers: int
    seed: int
    checkpoint_every: int
    baseline: Dict[str, Any]
    event_records: List[EventRecord] = field(default_factory=list)
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def signature_map(self) -> Dict[int, str]:
        """Event index -> post-event buffering signature."""
        return {r.index: r.signature for r in self.event_records}

    def signature_digest(self) -> str:
        """One hash over the whole signature map (determinism tests)."""
        payload = ";".join(
            f"{r.index}:{r.signature}" for r in self.event_records
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    @property
    def divergences(self) -> int:
        return sum(1 for c in self.checkpoints if not c.match)

    @property
    def event_seconds(self) -> List[float]:
        return [r.seconds for r in self.event_records]

    @property
    def latencies(self) -> List[float]:
        return [r.latency for r in self.event_records]

    def latency_percentiles(self) -> Dict[str, float]:
        lat = self.latencies
        return {
            "event_p50": _percentile(lat, 0.50),
            "event_p95": _percentile(lat, 0.95),
            "event_p99": _percentile(lat, 0.99),
        }

    def steady_speedup(self) -> Optional[float]:
        """Mean checkpoint full-replan seconds over mean steady-state
        incremental event seconds (events after the first checkpoint
        window, so cold-start effects don't flatter the ratio)."""
        secs = self.event_seconds
        if not secs:
            return None
        steady = (
            secs[self.checkpoint_every:]
            if len(secs) > self.checkpoint_every > 0
            else secs
        )
        full = [c.seconds_full for c in self.checkpoints]
        if not full:
            baseline_full = self.baseline.get("seconds_full")
            if not baseline_full:
                return None
            full = [float(baseline_full)]
        mean_event = sum(steady) / len(steady)
        if mean_event <= 0:
            return None
        return (sum(full) / len(full)) / mean_event

    def as_dict(self) -> Dict[str, Any]:
        speedup = self.steady_speedup()
        return {
            "workload": self.workload,
            "grid": self.grid,
            "nets": self.nets,
            "events": self.events,
            "workers": self.workers,
            "seed": self.seed,
            "checkpoint_every": self.checkpoint_every,
            "wall_seconds": round(self.wall_seconds, 4),
            "baseline": dict(self.baseline),
            "steady_speedup": (
                round(speedup, 2) if speedup is not None else None
            ),
            "divergences": self.divergences,
            "signature_digest": self.signature_digest(),
            **{
                k: round(v, 6)
                for k, v in self.latency_percentiles().items()
            },
            "checkpoints": [
                {
                    "event_index": c.event_index,
                    "match": c.match,
                    "seconds_full": round(c.seconds_full, 4),
                    "buffers_full": c.buffers_full,
                    "failed_full": c.failed_full,
                    "buffers_incremental": c.buffers_incremental,
                    "cost_delta": c.cost_delta,
                    "signature_incremental": c.signature_incremental,
                    "signature_full": c.signature_full,
                }
                for c in self.checkpoints
            ],
            "events_by_kind": self.events_by_kind(),
        }

    def events_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.event_records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return dict(sorted(out.items()))


def _baseline_cost(service, baseline_id: str) -> Optional[int]:
    """Buffer count of the service's evolved baseline, when visible."""
    try:
        base = service.baseline(baseline_id)
    except Exception:
        return None
    summary = getattr(base, "summary", None)
    if callable(summary):  # PlanState
        summary = summary()
    if not isinstance(summary, dict):
        return None
    buffers = summary.get("buffers")
    return int(buffers) if isinstance(buffers, int) else None


async def _replay_async(
    scenario: ScenarioSpec,
    trace: Sequence[TraceEvent],
    options: TraceOptions,
    config,
    tracer,
    workload: str,
) -> TraceReport:
    from repro.service.engine import full_plan

    if options.workers > 1:
        from repro.service.fleet import FleetOptions, FleetPlanningService

        service = FleetPlanningService(
            config=config,
            options=FleetOptions(
                workers=options.workers,
                job_timeout=options.job_timeout,
                max_queue_per_tenant=max(256, len(trace) + 2),
            ),
            tracer=tracer,
        )
    else:
        from repro.service.scheduler import PlanningService, SchedulerOptions

        service = PlanningService(
            config=config,
            options=SchedulerOptions(
                workers=1,
                job_timeout=options.job_timeout,
                max_queue=max(64, len(trace) + 2),
            ),
            tracer=tracer,
        )
    start = time.perf_counter()
    await service.start()
    try:
        base_job = Job(
            job_id="trace-base",
            kind="baseline",
            scenario=scenario,
            config=config.as_dict() if config is not None else None,
        )
        service.submit(base_job)
        record = await service.wait("trace-base")
        if record.status is not JobStatus.DONE:
            raise RuntimeError(
                f"trace baseline failed ({record.status.value}): "
                f"{record.error}"
            )
        report = TraceReport(
            workload=workload,
            grid=scenario.grid,
            nets=len(scenario.nets()),
            events=len(trace),
            workers=options.workers,
            seed=options.seed,
            checkpoint_every=options.checkpoint_every,
            baseline=dict(record.result or {}),
        )
        folded = scenario
        for event in trace:
            job = Job(
                job_id=f"trace-ev{event.index:06d}",
                kind="delta",
                baseline_id="trace-base",
                delta=event.delta,
            )
            service.submit(job)
            record = await service.wait(job.job_id)
            if record.status is not JobStatus.DONE:
                raise RuntimeError(
                    f"trace event {event.index} ({event.kind}) failed "
                    f"({record.status.value}): {record.error}"
                )
            result = record.result or {}
            folded = apply_delta(folded, event.delta)
            signature = str(result.get("signature", ""))
            report.event_records.append(
                EventRecord(
                    index=event.index,
                    kind=event.kind,
                    seconds=float(result.get("seconds", 0.0)),
                    latency=max(0.0, record.finished_at - record.started_at),
                    queue_wait=record.queue_wait,
                    signature=signature,
                    speedup_vs_full=result.get("speedup_vs_full"),
                    nets_rerouted=result.get("nets_rerouted"),
                )
            )
            if tracer.enabled:
                tracer.count("workload.trace_events")
                tracer.observe(
                    "workload.event_seconds",
                    float(result.get("seconds", 0.0)),
                )
            checkpoint_due = (
                options.checkpoint_every > 0
                and (event.index + 1) % options.checkpoint_every == 0
            )
            if checkpoint_due:
                t0 = time.perf_counter()
                full_state = full_plan(folded, config, tracer=tracer)
                seconds_full = time.perf_counter() - t0
                summary = full_state.summary()
                failed = summary["failed_nets"]
                failed_count = (
                    len(failed) if isinstance(failed, (list, tuple))
                    else int(failed)
                )
                buffers_incr = _baseline_cost(service, "trace-base")
                match = summary["signature"] == signature
                report.checkpoints.append(
                    CheckpointRecord(
                        event_index=event.index,
                        signature_incremental=signature,
                        signature_full=summary["signature"],
                        match=match,
                        seconds_full=seconds_full,
                        buffers_full=int(summary["buffers"]),
                        failed_full=failed_count,
                        buffers_incremental=buffers_incr,
                        cost_delta=(
                            int(summary["buffers"]) - buffers_incr
                            if buffers_incr is not None
                            else None
                        ),
                    )
                )
                if tracer.enabled:
                    tracer.count("workload.checkpoints")
                    if not match:
                        tracer.count("workload.divergences")
        report.wall_seconds = time.perf_counter() - start
        return report
    finally:
        await service.stop()


def replay_trace(
    scenario: ScenarioSpec,
    trace: Sequence[TraceEvent],
    options: Optional[TraceOptions] = None,
    config=None,
    tracer=NULL_TRACER,
    workload: str = "custom",
) -> TraceReport:
    """Replay a generated trace through the planning service.

    Synchronous wrapper; builds the service named by
    ``options.workers``, streams the events one at a time (each event
    waits for the previous one — the trace is a causal ECO history,
    not a throughput benchmark), and full-plans the folded scenario at
    every checkpoint to measure divergence.
    """
    options = options or TraceOptions()
    return asyncio.run(
        _replay_async(scenario, trace, options, config, tracer, workload)
    )


def run_workload_trace(
    workload: str,
    options: Optional[TraceOptions] = None,
    config=None,
    tracer=NULL_TRACER,
) -> TraceReport:
    """Generate + replay a trace for a registered workload tier."""
    from repro.workloads.registry import get_workload

    spec = get_workload(workload)
    options = options or TraceOptions()
    scenario = spec.scenario()
    trace = make_trace(scenario, options)
    return replay_trace(
        scenario, trace, options, config=config, tracer=tracer,
        workload=spec.name,
    )
