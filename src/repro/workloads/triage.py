"""Fast routability triage: FLUTE-free demand smearing over the tile grid.

A full RABID run on a big tier costs seconds to minutes; this module
answers "is it even worth launching?" in milliseconds with flat NumPy
over net bounding boxes — the congestion-assessment framing of
STAIRoute / early-routability estimation, adapted to this repo's
feasibility predicate (every net buffered within its length limit).

Three layers, from proof to estimate:

* **Certificates** (sound; never wrong):

  - *site bound*: every feasible plan needs at least
    ``ceil(HPWL/L) - 1`` buffers per net (each gate drives at most
    ``L`` tile units and every routed tree is at least HPWL long), so
    when the summed lower bound exceeds the total effective site count
    the scenario is infeasible for the planner's predicate.
  - *cut bound*: every net whose pin x-range spans a vertical grid cut
    must cross it at least once; when the forced crossings at any cut
    exceed the summed wire capacity across that cut, no
    capacity-respecting routing exists (the bound oracle's LP is
    infeasible). Same for horizontal cuts.

* **Site pressure** (estimate): ``demand_lb / total_sites``. Measured
  separation on this repo's workloads: infeasible site-contended
  scenarios sit at ~0.42+, every feasible control at <= 0.30 — the
  default ceiling 0.40 prunes only well inside the infeasible band.
  This is *not* a proof; see docs/WORKLOADS.md for the caveats.

* **Wire utilization** (estimate): per-edge demand smeared uniformly
  over each net's bounding box (H demand spread over the box's rows, V
  over its columns), against ``W(e)``. Produces the per-tile overflow
  heatmap and a ``congested`` flag; informational, never prunes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER

#: Triage verdict tiers, strongest first.
VERDICTS = ("infeasible", "site_starved", "congested", "routable")

#: Prune policies for gates built on a verdict.
TRIAGE_MODES = ("off", "certified", "estimate")


@dataclass(frozen=True)
class TriageOptions:
    """Estimator knobs.

    Attributes:
        site_pressure_ceiling: ``demand_lb / total_sites`` above which
            the scenario is flagged ``site_starved``. The default 0.40
            is calibrated with margin on this repo's workload family
            (feasible controls measure <= 0.30).
        utilization_ceiling: smeared per-edge utilization above which
            the scenario is flagged ``congested``.
        hotspots: how many worst overflow tiles ``as_dict`` reports.
    """

    site_pressure_ceiling: float = 0.40
    utilization_ceiling: float = 1.0
    hotspots: int = 5

    def __post_init__(self) -> None:
        if self.site_pressure_ceiling <= 0:
            raise ConfigurationError("site_pressure_ceiling must be > 0")
        if self.utilization_ceiling <= 0:
            raise ConfigurationError("utilization_ceiling must be > 0")
        if self.hotspots < 0:
            raise ConfigurationError("hotspots must be >= 0")


@dataclass(frozen=True)
class RoutabilityVerdict:
    """Everything one triage pass concluded about a scenario.

    ``certified_infeasible`` is backed by a proof (site or cut bound)
    and is always safe to act on; ``site_starved`` / ``congested`` are
    estimates. ``heatmap`` is the per-tile estimated wire overflow
    (tile value = summed overflow of its incident edges), kept off the
    JSON form.
    """

    grid: int
    nets: int
    total_sites: int
    demand_lb: int
    site_pressure: float
    h_util_max: float
    v_util_max: float
    overflow_edges: int
    est_overflow_total: float
    cut_slack: float
    worst_cut: str
    certified_infeasible: bool
    infeasible_reason: str  # "" | "sites" | "cut"
    site_starved: bool
    congested: bool
    seconds: float
    heatmap: np.ndarray = field(repr=False, compare=False)
    hotspots: Tuple[Tuple[int, int, float], ...] = ()

    @property
    def verdict(self) -> str:
        if self.certified_infeasible:
            return "infeasible"
        if self.site_starved:
            return "site_starved"
        if self.congested:
            return "congested"
        return "routable"

    def should_prune(self, mode: str) -> bool:
        """Would a gate running at ``mode`` skip the full run?"""
        if mode not in TRIAGE_MODES:
            raise ConfigurationError(
                f"unknown triage mode {mode!r}; expected one of "
                f"{TRIAGE_MODES}"
            )
        if mode == "off":
            return False
        if self.certified_infeasible:
            return True
        return mode == "estimate" and self.site_starved

    def as_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "grid": self.grid,
            "nets": self.nets,
            "total_sites": self.total_sites,
            "demand_lb": self.demand_lb,
            "site_pressure": round(self.site_pressure, 4),
            "h_util_max": round(self.h_util_max, 4),
            "v_util_max": round(self.v_util_max, 4),
            "overflow_edges": self.overflow_edges,
            "est_overflow_total": round(self.est_overflow_total, 4),
            "cut_slack": round(self.cut_slack, 4),
            "worst_cut": self.worst_cut,
            "certified_infeasible": self.certified_infeasible,
            "infeasible_reason": self.infeasible_reason,
            "site_starved": self.site_starved,
            "congested": self.congested,
            "hotspots": [list(h) for h in self.hotspots],
            "seconds": round(self.seconds, 4),
        }


def _net_boxes(
    scenario,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized pin bounding boxes + per-net length limits."""
    nets = scenario.nets()
    names = sorted(nets)
    limits = scenario.limits(names)
    n = len(names)
    x0 = np.empty(n, dtype=np.int64)
    x1 = np.empty(n, dtype=np.int64)
    y0 = np.empty(n, dtype=np.int64)
    y1 = np.empty(n, dtype=np.int64)
    lim = np.empty(n, dtype=np.float64)
    for i, name in enumerate(names):
        source, sinks = nets[name]
        xs = [source[0]] + [s[0] for s in sinks]
        ys = [source[1]] + [s[1] for s in sinks]
        x0[i] = min(xs)
        x1[i] = max(xs)
        y0[i] = min(ys)
        y1[i] = max(ys)
        lim[i] = limits[name]
    return x0, x1, y0, y1, lim


def smear_demand(
    x0: np.ndarray,
    x1: np.ndarray,
    y0: np.ndarray,
    y1: np.ndarray,
    nx: int,
    ny: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bounding-box wire demand on the H and V edge grids.

    Each net spreads its horizontal span uniformly over the box's rows
    and its vertical span over the box's columns — the classic
    FLUTE-free probabilistic congestion map, O(nets + tiles) via 2-D
    difference arrays. Returns ``(H, V)`` with H shaped ``(nx-1, ny)``
    (demand on edge ``(x,y)->(x+1,y)``) and V shaped ``(nx, ny-1)``.
    """
    rows = (y1 - y0 + 1).astype(np.float64)
    cols = (x1 - x0 + 1).astype(np.float64)
    dh = np.zeros((nx + 1, ny + 1))
    dv = np.zeros((nx + 1, ny + 1))
    wh = 1.0 / rows
    # H: cells x in [x0, x1), y in [y0, y1] each carry wh
    np.add.at(dh, (x0, y0), wh)
    np.add.at(dh, (x1, y0), -wh)
    np.add.at(dh, (x0, y1 + 1), -wh)
    np.add.at(dh, (x1, y1 + 1), wh)
    wv = 1.0 / cols
    # V: cells x in [x0, x1], y in [y0, y1) each carry wv
    np.add.at(dv, (x0, y0), wv)
    np.add.at(dv, (x0, y1), -wv)
    np.add.at(dv, (x1 + 1, y0), -wv)
    np.add.at(dv, (x1 + 1, y1), wv)
    h = dh.cumsum(axis=0).cumsum(axis=1)[: nx - 1, :ny]
    v = dv.cumsum(axis=0).cumsum(axis=1)[:nx, : ny - 1]
    return h, v


def triage_scenario(
    scenario,
    options: Optional[TriageOptions] = None,
    tracer=NULL_TRACER,
) -> RoutabilityVerdict:
    """One triage pass over a :class:`ScenarioSpec`."""
    from repro.service.engine import build_graph  # avoid import cycle

    options = options or TriageOptions()
    start = time.perf_counter()
    with tracer.span("triage.scenario", grid=scenario.grid):
        nx = ny = scenario.grid
        graph = build_graph(scenario)
        x0, x1, y0, y1, lim = _net_boxes(scenario)
        hpwl = (x1 - x0 + y1 - y0).astype(np.float64)

        # Certificate 1: summed per-net minimum-buffer lower bound.
        need = np.maximum(0.0, np.ceil(hpwl / lim) - 1.0)
        demand_lb = int(need.sum())
        total_sites = int(scenario.effective_sites().sum())
        site_pressure = demand_lb / max(1, total_sites)
        site_infeasible = demand_lb > total_sites

        # Certificate 2: forced crossings vs cut capacity, both axes.
        h_cap = np.asarray(graph.h_capacity, dtype=np.float64)
        v_cap = np.asarray(graph.v_capacity, dtype=np.float64)
        cut_slack = float("inf")
        worst_cut = ""
        if nx > 1:
            forced = np.zeros(nx, dtype=np.int64)
            np.add.at(forced, x0, 1)
            np.add.at(forced, x1, -1)
            forced = forced.cumsum()[: nx - 1]
            slack = h_cap.sum(axis=1) - forced
            c = int(slack.argmin())
            if slack[c] < cut_slack:
                cut_slack = float(slack[c])
                worst_cut = f"x={c}"
        if ny > 1:
            forced = np.zeros(ny, dtype=np.int64)
            np.add.at(forced, y0, 1)
            np.add.at(forced, y1, -1)
            forced = forced.cumsum()[: ny - 1]
            slack = v_cap.sum(axis=0) - forced
            c = int(slack.argmin())
            if slack[c] < cut_slack:
                cut_slack = float(slack[c])
                worst_cut = f"y={c}"
        cut_infeasible = cut_slack < 0

        # Estimate: smeared wire demand vs W(e), per-tile heatmap.
        h_dem, v_dem = smear_demand(x0, x1, y0, y1, nx, ny)
        with np.errstate(divide="ignore", invalid="ignore"):
            h_util = np.where(
                h_cap > 0, h_dem / h_cap, np.where(h_dem > 0, np.inf, 0.0)
            )
            v_util = np.where(
                v_cap > 0, v_dem / v_cap, np.where(v_dem > 0, np.inf, 0.0)
            )
        h_over = np.maximum(0.0, h_dem - h_cap)
        v_over = np.maximum(0.0, v_dem - v_cap)
        heatmap = np.zeros((nx, ny))
        heatmap[: nx - 1, :] += h_over
        heatmap[1:, :] += h_over
        heatmap[:, : ny - 1] += v_over
        heatmap[:, 1:] += v_over
        overflow_edges = int((h_over > 0).sum() + (v_over > 0).sum())
        est_overflow_total = float(h_over.sum() + v_over.sum())

        hotspots: List[Tuple[int, int, float]] = []
        if options.hotspots and est_overflow_total > 0:
            flat = heatmap.ravel()
            top = np.argsort(flat)[::-1][: options.hotspots]
            hotspots = [
                (int(t // ny), int(t % ny), float(flat[t]))
                for t in top
                if flat[t] > 0
            ]

        infeasible_reason = ""
        if site_infeasible:
            infeasible_reason = "sites"
        elif cut_infeasible:
            infeasible_reason = "cut"
        verdict = RoutabilityVerdict(
            grid=scenario.grid,
            nets=len(x0),
            total_sites=total_sites,
            demand_lb=demand_lb,
            site_pressure=site_pressure,
            h_util_max=float(h_util.max()) if h_util.size else 0.0,
            v_util_max=float(v_util.max()) if v_util.size else 0.0,
            overflow_edges=overflow_edges,
            est_overflow_total=est_overflow_total,
            cut_slack=cut_slack,
            worst_cut=worst_cut,
            certified_infeasible=bool(infeasible_reason),
            infeasible_reason=infeasible_reason,
            site_starved=site_pressure > options.site_pressure_ceiling,
            congested=bool(
                (h_util > options.utilization_ceiling).any()
                or (v_util > options.utilization_ceiling).any()
            ),
            seconds=time.perf_counter() - start,
            heatmap=heatmap,
            hotspots=tuple(hotspots),
        )
    if tracer.enabled:
        tracer.count("triage.runs")
        tracer.count(f"triage.verdict.{verdict.verdict}")
        tracer.observe("triage.seconds", verdict.seconds)
    return verdict
