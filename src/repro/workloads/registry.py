"""The workload registry: scale-ladder tiers and Table-I stand-ins.

Every recorded number before this subsystem came from one synthetic
32x32 / 500-net scenario. The registry names a *scale ladder* of
synthetic tiers (``ladder-32`` .. ``ladder-256``) plus square-grid
stand-ins for the ten Table-I paper circuits, all resolvable to a
:class:`~repro.service.jobs.ScenarioSpec` so the planner, the service,
the explore engine, and the streaming trace driver consume them
uniformly.

Table-I stand-ins keep the circuit's published net count, length limit,
buffer-site budget, and calibrated wire capacity, but run on a square
``max(nx, ny)`` grid (ScenarioSpec grids are square) with the synthetic
net generator — they reproduce the circuit's *resource shape*, not its
exact netlist. ``WorkloadSpec.describe()`` says so explicitly.

Every tier carries one movable macro (the service kernel's sizing
recipe) so ``move_macro`` ECO events are valid on any tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.benchmarks.spec import BENCHMARK_SPECS
from repro.errors import ConfigurationError
from repro.service.jobs import MacroSpec, ScenarioSpec

#: Registry sources, in listing order.
WORKLOAD_SOURCES = ("smoke", "ladder", "table1")


def _default_macro(grid: int) -> MacroSpec:
    """One movable macro per tier.

    Sized at ~3/32 of the die side: big enough that moving it dirties a
    real region, small enough that the site desert under it doesn't
    structurally fail every chip-crossing net (a macro wider than the
    length limit is an unbufferable span for nets forced through it).
    """
    side = max(2, grid * 3 // 32)
    origin = max(0, grid * 10 // 32)
    return MacroSpec(origin, origin, side, side)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, fully pinned planning workload.

    Attributes:
        name: registry key (``repro workload run --name <name>``).
        description: one-line human summary.
        source: ``"smoke"`` | ``"ladder"`` | ``"table1"``.
        grid: square die side in tiles.
        num_nets: synthetic netlist size.
        capacity: uniform wire capacity ``W(e)``.
        length_limit: default per-net ``L``.
        total_sites: scattered buffer-site budget.
        seed: net-generation seed.
        site_seed: site-scatter seed.
        paper_grid: the paper's printed ``(nx, ny)`` tiling for Table-I
            stand-ins; ``None`` for synthetic tiers.
    """

    name: str
    description: str
    source: str
    grid: int
    num_nets: int
    capacity: int = 8
    length_limit: int = 5
    total_sites: int = 600
    seed: int = 0
    site_seed: int = 0
    paper_grid: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.source not in WORKLOAD_SOURCES:
            raise ConfigurationError(
                f"unknown workload source {self.source!r}; expected one "
                f"of {WORKLOAD_SOURCES}"
            )

    def scenario(self) -> ScenarioSpec:
        """The tier as a planning scenario (one movable macro included)."""
        return ScenarioSpec(
            grid=self.grid,
            num_nets=self.num_nets,
            capacity=self.capacity,
            seed=self.seed,
            length_limit=self.length_limit,
            total_sites=self.total_sites,
            site_seed=self.site_seed,
            macros=(_default_macro(self.grid),),
        )

    def describe(self) -> Dict[str, object]:
        """JSON-able tier card (the ``workload describe`` payload)."""
        out: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "source": self.source,
            "grid": self.grid,
            "num_nets": self.num_nets,
            "capacity": self.capacity,
            "length_limit": self.length_limit,
            "total_sites": self.total_sites,
            "seed": self.seed,
            "site_seed": self.site_seed,
            "tiles": self.grid * self.grid,
        }
        if self.paper_grid is not None:
            out["paper_grid"] = list(self.paper_grid)
            out["stand_in"] = (
                "square-grid synthetic stand-in: paper resource shape "
                "(nets, L, sites, capacity), generated netlist"
            )
        return out


def _table1_workload(circuit: str) -> WorkloadSpec:
    spec = BENCHMARK_SPECS[circuit]
    kind = "random" if spec.is_random else "MCNC"
    return WorkloadSpec(
        name=f"table1-{circuit}",
        description=(
            f"Table-I {kind} circuit {circuit}: {spec.nets} nets, "
            f"L={spec.length_limit}, {spec.buffer_sites} sites "
            f"(square stand-in for the paper's "
            f"{spec.grid[0]}x{spec.grid[1]} grid)"
        ),
        source="table1",
        grid=max(spec.grid),
        num_nets=spec.nets,
        capacity=spec.default_wire_capacity,
        length_limit=spec.length_limit,
        total_sites=spec.buffer_sites,
        paper_grid=spec.grid,
    )


def _build_registry() -> Dict[str, WorkloadSpec]:
    tiers: List[WorkloadSpec] = [
        WorkloadSpec(
            name="smoke-16",
            description="CI smoke tier: 16x16 grid, 120 nets, rich sites",
            source="smoke",
            grid=16,
            num_nets=120,
            total_sites=1200,
        ),
        WorkloadSpec(
            name="ladder-32",
            description=(
                "baseline ladder rung: the recorded 32x32 / 500-net "
                "service workload"
            ),
            source="ladder",
            grid=32,
            num_nets=500,
            total_sites=2500,
        ),
        WorkloadSpec(
            name="ladder-64",
            description="64x64 grid, 2k nets: first scale-up rung",
            source="ladder",
            grid=64,
            num_nets=2000,
            total_sites=20000,
        ),
        WorkloadSpec(
            name="ladder-128",
            description="128x128 grid, 10k nets: fleet-scale rung",
            source="ladder",
            grid=128,
            num_nets=10000,
            total_sites=80000,
        ),
        WorkloadSpec(
            name="ladder-256",
            description=(
                "256x256 grid, 100k nets: stress rung (minutes per full "
                "plan; triage before launching)"
            ),
            source="ladder",
            grid=256,
            num_nets=100000,
            total_sites=800000,
        ),
    ]
    tiers.extend(_table1_workload(name) for name in sorted(BENCHMARK_SPECS))
    return {tier.name: tier for tier in tiers}


WORKLOADS: Dict[str, WorkloadSpec] = _build_registry()


def get_workload(name: str) -> WorkloadSpec:
    """Look a tier up by name; raises with the available names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}"
        ) from None


def list_workloads(source: Optional[str] = None) -> List[WorkloadSpec]:
    """All tiers (optionally one source), ladder-first listing order."""
    if source is not None and source not in WORKLOAD_SOURCES:
        raise ConfigurationError(
            f"unknown workload source {source!r}; expected one of "
            f"{WORKLOAD_SOURCES}"
        )
    tiers = [
        w
        for w in WORKLOADS.values()
        if source is None or w.source == source
    ]
    order = {s: i for i, s in enumerate(WORKLOAD_SOURCES)}
    return sorted(tiers, key=lambda w: (order[w.source], w.grid, w.name))
