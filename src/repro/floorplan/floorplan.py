"""A die plus placed blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import FloorplanError
from repro.floorplan.block import Block
from repro.geometry import Point, Rect


@dataclass
class Floorplan:
    """A fixed die outline with placed, non-overlapping hard blocks.

    ``validate`` enforces the invariants; construction does not, so the
    annealer can hold intermediate (overlapping) states in plain block lists
    and only build a Floorplan from a legal result.
    """

    die: Rect
    blocks: List[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name: Dict[str, Block] = {}
        for block in self.blocks:
            if block.name in self._by_name:
                raise FloorplanError(f"duplicate block name {block.name!r}")
            self._by_name[block.name] = block

    def get(self, name: str) -> Block:
        if name not in self._by_name:
            raise FloorplanError(f"no block named {name!r}")
        return self._by_name[name]

    def validate(self) -> None:
        """Raise unless every block is placed, inside the die, and disjoint."""
        for block in self.blocks:
            if not block.placed:
                raise FloorplanError(f"block {block.name!r} is unplaced")
            if not self.die.contains_rect(block.rect()):
                raise FloorplanError(f"block {block.name!r} extends outside the die")
        rects = [(b.name, b.rect()) for b in self.blocks]
        for i, (name_a, rect_a) in enumerate(rects):
            for name_b, rect_b in rects[i + 1 :]:
                if rect_a.overlaps(rect_b):
                    raise FloorplanError(f"blocks {name_a!r} and {name_b!r} overlap")

    @property
    def block_area(self) -> float:
        return sum(b.area for b in self.blocks)

    @property
    def utilization(self) -> float:
        """Fraction of the die covered by blocks."""
        return self.block_area / self.die.area

    def free_space(self, p: Point) -> bool:
        """True when ``p`` is on the die but inside no block."""
        if not self.die.contains(p):
            return False
        return not any(b.rect().contains(p) for b in self.blocks)

    def block_at(self, p: Point) -> "Block | None":
        """The block covering ``p``, if any."""
        for block in self.blocks:
            if block.rect().contains(p):
                return block
        return None

    def pad_location(self, t: float) -> Point:
        """Point on the die boundary, parameterized by ``t in [0, 1)``.

        Walks the die perimeter counter-clockwise from the lower-left
        corner; used to place I/O pads deterministically.
        """
        perimeter = 2 * (self.die.width + self.die.height)
        d = (t % 1.0) * perimeter
        if d < self.die.width:
            return Point(self.die.x0 + d, self.die.y0)
        d -= self.die.width
        if d < self.die.height:
            return Point(self.die.x1, self.die.y0 + d)
        d -= self.die.height
        if d < self.die.width:
            return Point(self.die.x1 - d, self.die.y1)
        d -= self.die.width
        return Point(self.die.x0, self.die.y1 - d)
