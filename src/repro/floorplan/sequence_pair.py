"""Sequence-pair floorplan representation (Murata et al.).

A sequence pair ``(gamma_plus, gamma_minus)`` over n blocks encodes the
relative placement of every pair: block ``a`` is left of ``b`` when ``a``
precedes ``b`` in both sequences, and below ``b`` when ``a`` follows ``b``
in ``gamma_plus`` but precedes it in ``gamma_minus``. Packing to coordinates
is done with the standard longest-path (here: O(n^2) DP over the weighted
constraint relation, fast enough for the <=150-block benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FloorplanError


@dataclass
class SequencePair:
    """A pair of permutations of ``range(n)``."""

    plus: List[int]
    minus: List[int]

    def __post_init__(self) -> None:
        n = len(self.plus)
        if sorted(self.plus) != list(range(n)) or sorted(self.minus) != list(range(n)):
            raise FloorplanError("sequence pair must be two permutations of range(n)")

    @property
    def size(self) -> int:
        return len(self.plus)

    @classmethod
    def identity(cls, n: int) -> "SequencePair":
        return cls(list(range(n)), list(range(n)))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "SequencePair":
        return cls(
            list(rng.permutation(n)),
            list(rng.permutation(n)),
        )

    def copy(self) -> "SequencePair":
        return SequencePair(list(self.plus), list(self.minus))

    def swap_in_plus(self, i: int, j: int) -> None:
        self.plus[i], self.plus[j] = self.plus[j], self.plus[i]

    def swap_in_minus(self, i: int, j: int) -> None:
        self.minus[i], self.minus[j] = self.minus[j], self.minus[i]

    def swap_in_both(self, a: int, b: int) -> None:
        """Swap blocks ``a`` and ``b`` (by id) in both sequences."""
        ia, ib = self.plus.index(a), self.plus.index(b)
        self.swap_in_plus(ia, ib)
        ia, ib = self.minus.index(a), self.minus.index(b)
        self.swap_in_minus(ia, ib)

    def pack(
        self, widths: Sequence[float], heights: Sequence[float]
    ) -> Tuple[List[float], List[float], float, float]:
        """Pack to lower-left coordinates.

        Returns ``(xs, ys, total_width, total_height)`` where block ``i``
        occupies ``[xs[i], xs[i]+widths[i]] x [ys[i], ys[i]+heights[i]]``.
        """
        n = self.size
        if len(widths) != n or len(heights) != n:
            raise FloorplanError("widths/heights length mismatch with sequence pair")
        pos_plus = [0] * n
        pos_minus = [0] * n
        for idx, b in enumerate(self.plus):
            pos_plus[b] = idx
        for idx, b in enumerate(self.minus):
            pos_minus[b] = idx

        # Horizontal: a left-of b  <=>  a before b in both sequences.
        # Longest path over the "left-of" DAG in gamma_minus order.
        xs = [0.0] * n
        order_minus = list(self.minus)
        for i_idx, b in enumerate(order_minus):
            x_end = xs[b] + widths[b]
            for a in order_minus[i_idx + 1 :]:
                if pos_plus[b] < pos_plus[a]:
                    xs[a] = max(xs[a], x_end)
                    # not transitive-reduced; O(n^2) is fine at this scale

        # Vertical: a below b  <=>  a after b in plus, a before b in minus.
        ys = [0.0] * n
        for i_idx, b in enumerate(order_minus):
            y_end = ys[b] + heights[b]
            for a in order_minus[i_idx + 1 :]:
                if pos_plus[b] > pos_plus[a]:
                    ys[a] = max(ys[a], y_end)

        total_w = max((xs[i] + widths[i]) for i in range(n)) if n else 0.0
        total_h = max((ys[i] + heights[i]) for i in range(n)) if n else 0.0
        return xs, ys, total_w, total_h
