"""Floorplanning substrate.

The paper's experiments derive floorplans by running Cong et al.'s BBP code
(Monte-Carlo simulated annealing) and discarding the inserted buffer blocks.
We reproduce that role with a sequence-pair simulated-annealing floorplanner:
given a set of hard macro blocks, it produces non-overlapping placements
inside a fixed die, minimizing a weighted area/wirelength objective.
"""

from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.sequence_pair import SequencePair
from repro.floorplan.annealing import AnnealingOptions, anneal_floorplan

__all__ = [
    "Block",
    "Floorplan",
    "SequencePair",
    "AnnealingOptions",
    "anneal_floorplan",
]
