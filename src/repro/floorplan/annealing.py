"""Simulated-annealing floorplanner over sequence pairs.

Stands in for the Monte-Carlo annealing floorplanner inside the BBP code the
paper used. Given blocks and a target die, it searches sequence pairs (plus
per-block rotations) minimizing packed area overflow beyond the die plus a
wirelength proxy (sum of distances between centers of connected blocks).
The result is scaled/centred placements inside the die.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import FloorplanError
from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.sequence_pair import SequencePair
from repro.geometry import Rect
from repro.utils.rng import make_rng


@dataclass
class AnnealingOptions:
    """Knobs for :func:`anneal_floorplan`.

    Attributes:
        iterations: total proposed moves.
        initial_temperature: in cost units; cooled geometrically.
        cooling: multiplicative cooling factor applied every
            ``moves_per_temperature`` moves.
        moves_per_temperature: plateau length.
        wirelength_weight: weight of the connectivity proxy term relative
            to packed-area overflow.
        allow_rotation: propose width/height swaps.
    """

    iterations: int = 4000
    initial_temperature: float = 1.0
    cooling: float = 0.95
    moves_per_temperature: int = 50
    wirelength_weight: float = 0.1
    allow_rotation: bool = True


def _cost(
    sp: SequencePair,
    widths: List[float],
    heights: List[float],
    die: Rect,
    adjacency: Sequence[Tuple[int, int]],
    wl_weight: float,
) -> Tuple[float, List[float], List[float], float, float]:
    xs, ys, total_w, total_h = sp.pack(widths, heights)
    overflow_w = max(0.0, total_w - die.width)
    overflow_h = max(0.0, total_h - die.height)
    area_cost = (total_w * total_h) / die.area + 4.0 * (
        overflow_w / die.width + overflow_h / die.height
    )
    wl = 0.0
    if adjacency and wl_weight > 0:
        half_perim = die.width + die.height
        for a, b in adjacency:
            ax = xs[a] + widths[a] / 2
            ay = ys[a] + heights[a] / 2
            bx = xs[b] + widths[b] / 2
            by = ys[b] + heights[b] / 2
            wl += (abs(ax - bx) + abs(ay - by)) / half_perim
        wl /= max(1, len(adjacency))
    return area_cost + wl_weight * wl, xs, ys, total_w, total_h


def anneal_floorplan(
    blocks: Sequence[Block],
    die: Rect,
    adjacency: "Sequence[Tuple[int, int]] | None" = None,
    options: "AnnealingOptions | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> Floorplan:
    """Place ``blocks`` inside ``die`` by sequence-pair annealing.

    Args:
        blocks: macros to place; total area must fit the die.
        die: fixed outline.
        adjacency: optional block-index pairs used as a wirelength proxy.
        options: annealing schedule; defaults are adequate for <=150 blocks.
        seed: RNG seed or generator for reproducibility.

    Returns:
        A validated :class:`Floorplan` with placements spread across the die.

    Raises:
        FloorplanError: when blocks cannot fit even at full packing.
    """
    options = options or AnnealingOptions()
    rng = make_rng(seed)
    n = len(blocks)
    if n == 0:
        return Floorplan(die=die, blocks=[])
    total_area = sum(b.area for b in blocks)
    if total_area > die.area:
        raise FloorplanError(
            f"blocks area {total_area:.3f} exceeds die area {die.area:.3f}"
        )
    adjacency = adjacency or []

    widths = [b.width for b in blocks]
    heights = [b.height for b in blocks]
    sp = SequencePair.random(n, rng)
    cost, xs, ys, tw, th = _cost(
        sp, widths, heights, die, adjacency, options.wirelength_weight
    )
    best = (cost, sp.copy(), list(widths), list(heights), xs, ys, tw, th)

    temperature = options.initial_temperature
    for it in range(options.iterations):
        move = rng.integers(0, 3 if options.allow_rotation else 2)
        trial = sp.copy()
        trial_w, trial_h = list(widths), list(heights)
        if move == 0:
            i, j = rng.integers(0, n, size=2)
            trial.swap_in_plus(int(i), int(j))
        elif move == 1:
            i, j = rng.integers(0, n, size=2)
            trial.swap_in_minus(int(i), int(j))
        else:
            k = int(rng.integers(0, n))
            trial_w[k], trial_h[k] = trial_h[k], trial_w[k]
        new_cost, nxs, nys, ntw, nth = _cost(
            trial, trial_w, trial_h, die, adjacency, options.wirelength_weight
        )
        accept = new_cost <= cost or rng.random() < math.exp(
            -(new_cost - cost) / max(temperature, 1e-9)
        )
        if accept:
            sp, widths, heights = trial, trial_w, trial_h
            cost, xs, ys, tw, th = new_cost, nxs, nys, ntw, nth
            if cost < best[0]:
                best = (cost, sp.copy(), list(widths), list(heights), xs, ys, tw, th)
        if (it + 1) % options.moves_per_temperature == 0:
            temperature *= options.cooling

    _, bsp, bw, bh, xs, ys, tw, th = best
    return _realize(blocks, die, bw, bh, xs, ys, tw, th)


def _realize(
    blocks: Sequence[Block],
    die: Rect,
    widths: List[float],
    heights: List[float],
    xs: List[float],
    ys: List[float],
    total_w: float,
    total_h: float,
) -> Floorplan:
    """Scale a packed layout into the die and spread the slack evenly."""
    n = len(blocks)
    # Uniform shrink if the pack overflows the die (annealer should avoid
    # this, but a guaranteed-legal result is worth the distortion).
    scale = min(
        1.0,
        die.width / total_w if total_w > 0 else 1.0,
        die.height / total_h if total_h > 0 else 1.0,
    )
    placed: List[Block] = []
    # Spread remaining slack proportionally so blocks are not glued to the
    # lower-left corner: stretch block origins (not sizes) across the die.
    stretch_x = (die.width - total_w * scale) / max(total_w * scale, 1e-12)
    stretch_y = (die.height - total_h * scale) / max(total_h * scale, 1e-12)
    for i in range(n):
        w = widths[i] * scale
        h = heights[i] * scale
        x0 = die.x0 + xs[i] * scale * (1.0 + stretch_x)
        y0 = die.y0 + ys[i] * scale * (1.0 + stretch_y)
        x0 = min(x0, die.x1 - w)
        y0 = min(y0, die.y1 - h)
        placed.append(
            Block(
                name=blocks[i].name,
                width=w,
                height=h,
                x=x0,
                y=y0,
                allows_buffer_sites=blocks[i].allows_buffer_sites,
            )
        )
    plan = Floorplan(die=die, blocks=placed)
    plan.validate()
    return plan
