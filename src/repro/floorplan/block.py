"""Hard macro blocks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FloorplanError
from repro.geometry import Point, Rect


@dataclass
class Block:
    """A hard rectangular macro.

    Attributes:
        name: unique block name.
        width, height: dimensions in mm (the footprint may be rotated by
            the floorplanner, which swaps these).
        x, y: lower-left corner after placement; ``None`` until placed.
        allows_buffer_sites: False for array-structured macros (caches,
            data paths) that cannot host buffer sites; the tile-graph site
            distributor skips tiles covered by such blocks.
    """

    name: str
    width: float
    height: float
    x: "float | None" = None
    y: "float | None" = None
    allows_buffer_sites: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError(f"block {self.name!r}: non-positive dimensions")

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def placed(self) -> bool:
        return self.x is not None and self.y is not None

    def rect(self) -> Rect:
        """Placed footprint. Raises when the block is unplaced."""
        if not self.placed:
            raise FloorplanError(f"block {self.name!r} is not placed")
        assert self.x is not None and self.y is not None
        return Rect(self.x, self.y, self.x + self.width, self.y + self.height)

    def center(self) -> Point:
        return self.rect().center

    def rotated(self) -> "Block":
        """A copy with width and height swapped (placement cleared)."""
        return Block(
            name=self.name,
            width=self.height,
            height=self.width,
            allows_buffer_sites=self.allows_buffer_sites,
        )

    def boundary_point(self, t: float) -> Point:
        """Point on the block boundary, parameterized by ``t in [0, 1)``.

        Walks the perimeter counter-clockwise from the lower-left corner.
        Used to place block pins deterministically.
        """
        r = self.rect()
        perimeter = 2 * (r.width + r.height)
        d = (t % 1.0) * perimeter
        if d < r.width:
            return Point(r.x0 + d, r.y0)
        d -= r.width
        if d < r.height:
            return Point(r.x1, r.y0 + d)
        d -= r.height
        if d < r.width:
            return Point(r.x1 - d, r.y1)
        d -= r.width
        return Point(r.x0, r.y1 - d)
