"""Observability for the RABID pipeline: spans, metrics, per-net events.

Usage::

    from repro.obs import Tracer, render_summary

    tracer = Tracer()
    planner = RabidPlanner(graph, netlist, config, tracer=tracer)
    planner.run()
    tracer.export_jsonl("trace.jsonl")
    print(render_summary(tracer))

The no-op default (:data:`NULL_TRACER`) keeps un-instrumented runs
byte-identical and essentially free; see ``docs/OBSERVABILITY.md`` for
the tracer API, the metric-name conventions, and the JSONL schema.
"""

from repro.obs.events import EVENT_KINDS, EventLog, NetEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import BUFFERING_COUNTERS, EXPLORE_COUNTERS, render_summary
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
)

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "NetEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BUFFERING_COUNTERS",
    "EXPLORE_COUNTERS",
    "render_summary",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "read_trace",
]
