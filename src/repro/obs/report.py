"""Human-readable summary of a collected trace.

``render_summary(tracer)`` prints the span tree with wall-clock timings,
the metrics snapshot, and the event-stream totals — the quick look a
``--metrics`` CLI run gives after a plan finishes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.tracer import SpanRecord, Tracer

#: Buffering-engine counters pulled into their own report section (they
#: also appear in the full metrics snapshot).
BUFFERING_COUNTERS = (
    "dp_candidates",
    "dp.candidates_pruned",
    "buffer_sites_used",
    "stage3.batches",
    "stage3.ledger_rollbacks",
)

#: Design-space-exploration counters (``repro explore``), sectioned like
#: the buffering ones.
EXPLORE_COUNTERS = (
    "explore.scenarios",
    "explore.cache_hits",
    "explore.retries",
    "explore.triage_pruned",
)

#: Workload-subsystem counters: streaming ECO traces and the routability
#: triage gate (:mod:`repro.workloads`).
WORKLOAD_COUNTERS = (
    "workload.trace_events",
    "workload.checkpoints",
    "workload.divergences",
    "triage.runs",
    "triage.skips",
)

#: Shared-memory worker-pool counters (:mod:`repro.parallel`).
POOL_COUNTERS = (
    "pool.dispatches",
    "pool.respawns",
    "pool.attaches",
    "pool.attach_reuse",
)

#: Planning-service scheduler counters (single-process and fleet).
SERVICE_COUNTERS = (
    "service.jobs_submitted",
    "service.jobs_shed",
    "service.jobs_timeout",
    "service.jobs_failed",
    "service.jobs_retried",
    "service.jobs_verified",
    "service.verify_mismatches",
    "fleet.dispatches",
    "fleet.preemptions",
    "fleet.rebuilds",
    "fleet.respawns",
    "fleet.fallbacks",
)

#: Per-stage scheduler latency histograms (queue wait and service time,
#: the latter split by execution mode).
SERVICE_HISTOGRAMS = (
    "service.queue_wait_seconds",
    "service.exec_seconds",
    "service.exec_seconds.baseline",
    "service.exec_seconds.incremental",
    "service.exec_seconds.full",
)


def _span_tree_lines(tracer: Tracer) -> List[str]:
    children: Dict[int, List[SpanRecord]] = {}
    roots: List[SpanRecord] = []
    for span in tracer.spans:
        if span.parent is None:
            roots.append(span)
        else:
            children.setdefault(span.parent, []).append(span)

    lines: List[str] = []

    def emit(span: SpanRecord, indent: int) -> None:
        timing = (
            f"{span.duration_s * 1e3:9.1f} ms" if span.closed else "   (open)  "
        )
        attrs = ""
        if span.attrs:
            attrs = " " + " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        lines.append(f"{timing}  {'  ' * indent}{span.name}{attrs}")
        for child in children.get(span.index, []):
            emit(child, indent + 1)

    for root in roots:
        emit(root, 0)
    return lines


def render_summary(tracer: Tracer) -> str:
    """The full text report: spans, metrics, event totals."""
    sections: List[str] = []
    if tracer.spans:
        sections.append("== spans ==")
        sections.extend(_span_tree_lines(tracer))
    if len(tracer.metrics):
        sections.append("== metrics ==")
        sections.append(tracer.metrics.render())
    buffering = [
        (name, tracer.metrics.get(name))
        for name in BUFFERING_COUNTERS
        if tracer.metrics.get(name) is not None
    ]
    if buffering:
        sections.append("== buffering ==")
        for name, metric in buffering:
            sections.append(f"{name:24s} {metric.value}")
    explore = [
        (name, tracer.metrics.get(name))
        for name in EXPLORE_COUNTERS
        if tracer.metrics.get(name) is not None
    ]
    if explore:
        sections.append("== explore ==")
        for name, metric in explore:
            sections.append(f"{name:24s} {metric.value}")
    workload = [
        (name, tracer.metrics.get(name))
        for name in WORKLOAD_COUNTERS
        if tracer.metrics.get(name) is not None
    ]
    if workload:
        sections.append("== workload ==")
        for name, metric in workload:
            sections.append(f"{name:24s} {metric.value}")
    pool = [
        (name, tracer.metrics.get(name))
        for name in POOL_COUNTERS
        if tracer.metrics.get(name) is not None
    ]
    if pool:
        sections.append("== pool ==")
        for name, metric in pool:
            sections.append(f"{name:24s} {metric.value}")
    service = [
        (name, tracer.metrics.get(name))
        for name in SERVICE_COUNTERS
        if tracer.metrics.get(name) is not None
    ]
    service_hist = [
        (name, tracer.metrics.get(name))
        for name in SERVICE_HISTOGRAMS
        if tracer.metrics.get(name) is not None
    ]
    if service or service_hist:
        sections.append("== service ==")
        for name, metric in service:
            sections.append(f"{name:32s} {metric.value}")
        for name, metric in service_hist:
            peak = metric.maximum if metric.count else 0.0
            sections.append(
                f"{name:32s} n={metric.count} "
                f"mean={metric.mean * 1e3:.2f}ms max={peak * 1e3:.2f}ms"
            )
    counts = tracer.events.counts_by_kind()
    if counts:
        sections.append("== events ==")
        for kind in sorted(counts):
            sections.append(f"{kind:10s} {counts[kind]}")
    return "\n".join(sections) if sections else "(empty trace)"
