"""Typed metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` maps names to exactly one metric type; using a
name with a second type raises :class:`ObservabilityError` so a typo in an
instrumentation site fails loudly instead of silently forking the series.

Conventions used by the instrumented planner code:

* counters are monotonic totals (``nets_rerouted``, ``dp_candidates``,
  ``buffer_sites_used``, ``maze_nodes_expanded``, ...);
* gauges are last-write-wins snapshots (``overflow_total``,
  ``stage3.num_buffers``, ...);
* histograms keep count/sum/min/max of observed values
  (``stage.cpu_seconds``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import ObservabilityError


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: Union[int, float] = 0

    def add(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (add({n}))"
            )
        self.value += n

    def as_record(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


@dataclass
class Gauge:
    """A last-write-wins snapshot value."""

    name: str
    value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def as_record(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


@dataclass
class Histogram:
    """Count/sum/min/max summary of observed samples."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_record(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map enforcing one type per name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    def get(self, name: str) -> "Metric | None":
        return self._metrics.get(name)

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """The value of a counter/gauge, or ``default`` when absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise ObservabilityError(f"metric {name!r} is a histogram")
        return metric.value

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def items(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def as_records(self) -> List[dict]:
        """One export record per metric, sorted by name."""
        return [m.as_record() for _, m in self.items()]

    def render(self) -> str:
        """Human-readable snapshot, one line per metric."""
        lines: List[str] = []
        for name, metric in self.items():
            if isinstance(metric, Counter):
                lines.append(f"counter   {name} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"gauge     {name} = {metric.value}")
            else:
                lines.append(
                    f"histogram {name}: n={metric.count} sum={metric.total:.6g} "
                    f"mean={metric.mean:.6g}"
                )
        return "\n".join(lines)
