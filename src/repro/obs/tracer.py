"""The tracer: nested timing spans + metrics + the per-net event stream.

One :class:`Tracer` instance collects everything a planning run emits:

* **spans** — nested, monotonic-clock timed sections
  (``with tracer.span("stage2.pass", **{"pass": i}): ...``);
* **metrics** — typed counters/gauges/histograms (:mod:`repro.obs.metrics`);
* **events** — the per-net stream (:mod:`repro.obs.events`).

The default everywhere is :data:`NULL_TRACER`, a no-op with the same duck
API, so un-traced runs pay (almost) nothing and — crucially — produce
byte-identical planning results: the tracer records, it never steers.

``Tracer(debug_checks=True)`` additionally asserts the buffer-site
invariants (``b(v) >= 0`` and ``b(v) <= B(v)`` for every tile) at the
planner's event hooks, turning a traced run into a self-checking one.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, Dict, Iterator, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.events import Attr, EventLog, NetEvent
from repro.obs.metrics import MetricsRegistry

#: Schema version stamped into the export's ``meta`` record.
TRACE_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One (possibly still open) timed section."""

    index: int
    name: str
    parent: Optional[int]
    depth: int
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, Attr] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def as_record(self) -> dict:
        return {
            "type": "span",
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context manager that closes its span exactly once."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._record)
        return False


class Tracer:
    """Collects spans, metrics, and per-net events for one run."""

    enabled = True

    def __init__(self, debug_checks: bool = True) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self._stack: List[int] = []
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self.debug_checks = debug_checks

    # -- spans --------------------------------------------------------- #

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Attr) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            index=len(self.spans),
            name=name,
            parent=parent,
            depth=len(self._stack),
            start_s=self._now(),
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(record.index)
        return _SpanContext(self, record)

    def _close(self, record: SpanRecord) -> None:
        if record.closed:
            raise ObservabilityError(f"span {record.name!r} closed twice")
        if not self._stack or self._stack[-1] != record.index:
            raise ObservabilityError(
                f"span {record.name!r} closed out of nesting order"
            )
        self._stack.pop()
        record.end_s = self._now()

    @property
    def open_spans(self) -> List[SpanRecord]:
        return [self.spans[i] for i in self._stack]

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    # -- metrics ------------------------------------------------------- #

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.metrics.counter(name).add(n)

    def gauge(self, name: str, value: Union[int, float]) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- events -------------------------------------------------------- #

    def event(
        self, kind: str, net: str, stage: Optional[str] = None, **attrs: Attr
    ) -> NetEvent:
        return self.events.record(self._now(), kind, net, stage, **attrs)

    # -- debug invariants ---------------------------------------------- #

    def check_site_invariants(self, graph, context: str = "") -> None:
        """Assert ``0 <= b(v) <= B(v)`` for every tile (debug builds only).

        Called by the instrumented planner at its event hooks; a no-op
        unless ``debug_checks`` is set. ``graph`` is a
        :class:`repro.tilegraph.graph.TileGraph`.
        """
        if not self.debug_checks:
            return
        used = graph.used_sites
        if (used < 0).any():
            tiles = list(zip(*((used < 0).nonzero())))
            raise ObservabilityError(
                f"negative used-site count at tiles {tiles[:5]}"
                + (f" ({context})" if context else "")
            )
        over = used > graph.sites
        if over.any():
            tiles = list(zip(*(over.nonzero())))
            raise ObservabilityError(
                f"b(v) > B(v) at tiles {tiles[:5]}"
                + (f" ({context})" if context else "")
            )

    # -- export -------------------------------------------------------- #

    def to_records(self) -> List[dict]:
        """All collected data as export records (meta first)."""
        records: List[dict] = [
            {
                "type": "meta",
                "version": TRACE_SCHEMA_VERSION,
                "spans": len(self.spans),
                "events": len(self.events),
                "metrics": len(self.metrics),
            }
        ]
        records.extend(s.as_record() for s in self.spans)
        records.extend(self.metrics.as_records())
        records.extend(self.events.as_records())
        return records

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the trace as JSON lines; returns the line count.

        ``target`` is a path or an open text file object.
        """
        records = self.to_records()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record) + "\n")
        else:
            for record in records:
                target.write(json.dumps(record) + "\n")
        return len(records)


class NullTracer:
    """Do-nothing stand-in with the :class:`Tracer` duck API.

    Every method is an inert constant-time call so library code can write
    ``tracer.count(...)`` unconditionally; hot loops should additionally
    gate per-element work on ``tracer.enabled``.
    """

    enabled = False
    debug_checks = False
    __slots__ = ()

    class _NullContext:
        __slots__ = ()

        def __enter__(self):
            return None

        def __exit__(self, exc_type, exc, tb) -> bool:
            return False

    _CONTEXT = _NullContext()

    def span(self, name: str, **attrs: Attr) -> "_NullContext":
        return self._CONTEXT

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def gauge(self, name: str, value: Union[int, float]) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, net: str, stage: Optional[str] = None, **attrs):
        return None

    def check_site_invariants(self, graph, context: str = "") -> None:
        pass


#: Shared inert tracer used as the default everywhere.
NULL_TRACER = NullTracer()


def read_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file back into its records."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
