"""The structured per-net event stream.

Every notable thing that happens to a net during planning is one
:class:`NetEvent`: it was ripped up, rerouted, buffered, failed its length
rule, or was rescued. Events carry a monotonic sequence number, a
timestamp relative to the tracer's epoch, the stage that emitted them, and
free-form numeric/string attributes (buffer counts, two-path swap counts,
...). The stream exports as JSON lines (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ObservabilityError

#: The closed set of event kinds; anything else is a programming error.
EVENT_KINDS = frozenset(
    {"ripped_up", "rerouted", "buffered", "failed", "rescued"}
)

Attr = Union[int, float, str, bool, None]


@dataclass(frozen=True)
class NetEvent:
    """One per-net planning event."""

    seq: int
    t_s: float
    kind: str
    net: str
    stage: Optional[str] = None
    attrs: Dict[str, Attr] = field(default_factory=dict)

    def as_record(self) -> dict:
        return {
            "type": "event",
            "seq": self.seq,
            "t_s": self.t_s,
            "kind": self.kind,
            "net": self.net,
            "stage": self.stage,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """Append-only, kind-validated event collection."""

    def __init__(self) -> None:
        self._events: List[NetEvent] = []

    def record(
        self,
        t_s: float,
        kind: str,
        net: str,
        stage: Optional[str] = None,
        **attrs: Attr,
    ) -> NetEvent:
        if kind not in EVENT_KINDS:
            raise ObservabilityError(
                f"unknown event kind {kind!r}; expected one of "
                f"{sorted(EVENT_KINDS)}"
            )
        event = NetEvent(len(self._events), t_s, kind, net, stage, attrs)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[NetEvent]:
        return iter(self._events)

    def by_kind(self, kind: str) -> List[NetEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def as_records(self) -> List[dict]:
        return [e.as_record() for e in self._events]
