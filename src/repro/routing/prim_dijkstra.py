"""Prim-Dijkstra spanning trees (Stage 1; Alpert et al., TCAD 1995).

The PD construction trades off between a minimum spanning tree (Prim) and a
shortest-path tree (Dijkstra): a node ``v`` is attached to a tree node ``u``
minimizing ``c * pathlength(source -> u) + dist(u, v)``. ``c = 0`` gives
Prim/MST; ``c = 1`` gives Dijkstra/SPT. The paper uses ``c = 0.4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.geometry import Point, manhattan


@dataclass
class GeometricTree:
    """An undirected geometric tree over points, rooted at ``root``.

    ``points`` may grow (Steiner insertion); ``adjacency[i]`` holds the
    neighbor indices of point ``i``.
    """

    points: List[Point]
    adjacency: List[Set[int]]
    root: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.root < len(self.points):
            raise RoutingError("root index out of range")
        if len(self.adjacency) != len(self.points):
            raise RoutingError("adjacency size mismatch")

    @property
    def num_points(self) -> int:
        return len(self.points)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Undirected edges as (low index, high index) pairs."""
        for i, nbrs in enumerate(self.adjacency):
            for j in nbrs:
                if i < j:
                    yield (i, j)

    def wirelength(self) -> float:
        return sum(manhattan(self.points[i], self.points[j]) for i, j in self.edges())

    def add_point(self, p: Point) -> int:
        self.points.append(p)
        self.adjacency.append(set())
        return len(self.points) - 1

    def connect(self, i: int, j: int) -> None:
        if i == j:
            raise RoutingError("self-loop in geometric tree")
        self.adjacency[i].add(j)
        self.adjacency[j].add(i)

    def disconnect(self, i: int, j: int) -> None:
        self.adjacency[i].discard(j)
        self.adjacency[j].discard(i)

    def parent_order(self) -> List[Tuple[int, int]]:
        """(child, parent) pairs in BFS order from the root.

        Raises when the adjacency is disconnected (not a tree reaching all
        points).
        """
        parent: Dict[int, int] = {self.root: -1}
        frontier = [self.root]
        order: List[Tuple[int, int]] = []
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in sorted(self.adjacency[u]):
                    if v not in parent:
                        parent[v] = u
                        order.append((v, u))
                        nxt.append(v)
            frontier = nxt
        if len(parent) != len(self.points):
            raise RoutingError("geometric tree is disconnected")
        return order

    def path_length_from_root(self) -> List[float]:
        """Source-to-node path lengths (mm)."""
        lengths = [0.0] * len(self.points)
        for child, parent in self.parent_order():
            lengths[child] = lengths[parent] + manhattan(
                self.points[child], self.points[parent]
            )
        return lengths

    def radius(self) -> float:
        """Longest source-to-node path length (mm)."""
        lengths = self.path_length_from_root()
        return max(lengths) if lengths else 0.0


def prim_dijkstra_tree(
    pins: List[Point],
    c: float = 0.4,
    source_index: int = 0,
) -> GeometricTree:
    """Build a PD spanning tree over ``pins``.

    Args:
        pins: pin locations; ``pins[source_index]`` is the driver.
        c: the radius/wirelength trade-off in [0, 1]; the paper uses 0.4.
        source_index: index of the driver pin.

    Returns:
        A :class:`GeometricTree` spanning all pins, rooted at the driver.
    """
    if not 0 <= c <= 1:
        raise ConfigurationError(f"PD trade-off c must be in [0, 1], got {c}")
    n = len(pins)
    if n == 0:
        raise RoutingError("cannot build a tree over zero pins")
    if not 0 <= source_index < n:
        raise RoutingError("source index out of range")

    adjacency: List[Set[int]] = [set() for _ in range(n)]
    tree = GeometricTree(points=list(pins), adjacency=adjacency, root=source_index)
    if n == 1:
        return tree

    in_tree = [False] * n
    in_tree[source_index] = True
    path_len = [0.0] * n
    # best attachment for each out-of-tree node: (cost, tree node)
    best_cost = [float("inf")] * n
    best_via = [-1] * n
    for v in range(n):
        if v != source_index:
            best_cost[v] = manhattan(pins[source_index], pins[v])
            best_via[v] = source_index

    for _ in range(n - 1):
        # O(n^2) scan; net degrees are small (tens of pins at most).
        chosen = -1
        chosen_cost = float("inf")
        for v in range(n):
            if not in_tree[v] and best_cost[v] < chosen_cost:
                chosen_cost = best_cost[v]
                chosen = v
        if chosen < 0:
            raise RoutingError("PD construction stalled (disconnected input?)")
        u = best_via[chosen]
        tree.connect(u, chosen)
        in_tree[chosen] = True
        path_len[chosen] = path_len[u] + manhattan(pins[u], pins[chosen])
        for v in range(n):
            if in_tree[v]:
                continue
            cost = c * path_len[chosen] + manhattan(pins[chosen], pins[v])
            if cost < best_cost[v]:
                best_cost[v] = cost
                best_via[v] = chosen
    return tree
