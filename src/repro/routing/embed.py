"""Embedding geometric Steiner trees onto the tile grid.

Each geometric tree edge becomes an L-shaped tile path (horizontal leg
first, then vertical — a fixed convention keeps results deterministic).
The union of the paths is reduced to a tile tree by BFS from the source
tile (:meth:`RouteTree.from_paths`), so crossing legs merge rather than
duplicate wire.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import Point
from repro.routing.prim_dijkstra import GeometricTree
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph


def l_shaped_tile_path(graph: TileGraph, a: Point, b: Point) -> List[Tile]:
    """Tile path from ``a``'s tile to ``b``'s tile: x-leg then y-leg."""
    ta = graph.tile_of(a)
    tb = graph.tile_of(b)
    return l_shaped_between_tiles(ta, tb)


def l_shaped_between_tiles(ta: Tile, tb: Tile) -> List[Tile]:
    """Tile path from ``ta`` to ``tb``: horizontal leg then vertical leg."""
    path = [ta]
    x, y = ta
    step_x = 1 if tb[0] > x else -1
    while x != tb[0]:
        x += step_x
        path.append((x, y))
    step_y = 1 if tb[1] > y else -1
    while y != tb[1]:
        y += step_y
        path.append((x, y))
    return path


def embed_tree(
    graph: TileGraph,
    tree: GeometricTree,
    sink_points: Sequence[Point],
    net_name: str = "",
) -> RouteTree:
    """Embed a geometric tree as a :class:`RouteTree` on ``graph``.

    Args:
        graph: the tile graph defining the grid.
        tree: geometric Steiner tree rooted at the net's driver.
        sink_points: the net's sink pin locations (subset of tree points,
            but passed separately because Steiner points are not sinks).
        net_name: carried through for diagnostics.

    Returns:
        A route tree whose root is the driver's tile and whose sink flags
        mark every tile containing a sink pin.
    """
    source_tile = graph.tile_of(tree.points[tree.root])
    paths: List[List[Tile]] = []
    for i, j in tree.edges():
        paths.append(l_shaped_tile_path(graph, tree.points[i], tree.points[j]))
    sink_tiles = sorted({graph.tile_of(p) for p in sink_points})
    # A sink sharing the source tile is trivially reached; from_paths
    # requires reachability, which holds since source is in every path set.
    return RouteTree.from_paths(source_tile, paths, sink_tiles, net_name=net_name)
