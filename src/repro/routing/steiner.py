"""Greedy edge-overlap removal: spanning tree -> Steiner tree (paper Fig. 4).

Two tree edges sharing an endpoint ``u`` — ``(u, a)`` and ``(u, b)`` — have
rectilinear routes that can share up to ``dist(u, m)`` of wire, where ``m``
is the component-wise median of ``u``, ``a``, ``b`` (the Manhattan median
lies on a shortest path between every pair of the three points). Introducing
a Steiner point at ``m`` removes exactly that much wirelength. The greedy
loop repeatedly applies the largest available overlap until none remains;
it terminates because every new coordinate is drawn from the existing
coordinate set and total wirelength strictly decreases.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

from repro.geometry import manhattan
from repro.routing.prim_dijkstra import GeometricTree

#: Overlaps below this length (mm) are ignored; guards float noise.
_EPSILON = 1e-9


def _best_overlap(tree: GeometricTree) -> Optional[Tuple[float, int, int, int]]:
    """The largest (overlap, u, a, b) over edge pairs sharing node u."""
    best: Optional[Tuple[float, int, int, int]] = None
    for u in range(tree.num_points):
        neighbors = sorted(tree.adjacency[u])
        if len(neighbors) < 2:
            continue
        pu = tree.points[u]
        for a, b in combinations(neighbors, 2):
            m = pu.median_with(tree.points[a], tree.points[b])
            gain = manhattan(pu, m)
            if gain > _EPSILON and (best is None or gain > best[0]):
                best = (gain, u, a, b)
    return best


def remove_overlaps(tree: GeometricTree, max_rounds: int = 10_000) -> GeometricTree:
    """Apply greedy overlap removal in place; returns the same tree.

    Args:
        tree: a geometric spanning tree; modified in place (Steiner points
            appended, edges rewired).
        max_rounds: safety bound on greedy iterations.

    Returns:
        The input tree, now a Steiner tree with no removable overlap.
    """
    for _ in range(max_rounds):
        found = _best_overlap(tree)
        if found is None:
            return tree
        _, u, a, b = found
        m = tree.points[u].median_with(tree.points[a], tree.points[b])
        tree.disconnect(u, a)
        tree.disconnect(u, b)
        s = tree.add_point(m)
        tree.connect(u, s)
        # Zero-length edges (m coincides with a or b) are fine: the embed
        # step maps coincident points to the same tile.
        tree.connect(s, a)
        tree.connect(s, b)
    return tree


def steiner_tree(tree: GeometricTree) -> GeometricTree:
    """Alias for :func:`remove_overlaps` kept for API clarity."""
    return remove_overlaps(tree)
