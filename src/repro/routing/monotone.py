"""Equal-length congestion cleanup (the paper's Table V postprocessing).

For Table V the paper applies "a postprocessing step (applied to both
RABID and BBP/FR) which tries to minimize congestion for the current
buffering solution without increasing wire length". Between two tiles, all
*monotone staircase* paths have the same (minimum) length; swapping a
congested staircase for a cheaper one is free in wirelength.

:func:`best_monotone_path` finds the min-congestion monotone path between
two tiles by DP over the bounding-box grid; :func:`reduce_congestion`
applies it to every two-path of every net whose endpoints allow it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.routing.maze import scalar_edge_cost, soft_congestion_cost
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph

INF = float("inf")

EdgeCost = Callable[[TileGraph, Tile, Tile], float]


def is_monotone(path: Sequence[Tile]) -> bool:
    """True when the path never backtracks in x or in y."""
    dxs = {b[0] - a[0] for a, b in zip(path, path[1:]) if b[0] != a[0]}
    dys = {b[1] - a[1] for a, b in zip(path, path[1:]) if b[1] != a[1]}
    return len(dxs) <= 1 and len(dys) <= 1


def best_monotone_path(
    graph: TileGraph,
    start: Tile,
    goal: Tile,
    cost_fn: EdgeCost = soft_congestion_cost,
    forbidden: "Set[Tile] | None" = None,
) -> Optional[List[Tile]]:
    """Cheapest monotone staircase path from ``start`` to ``goal``.

    All such paths have length ``|dx| + |dy|`` (the minimum possible), so
    any is wirelength-neutral versus an L-shape. DP proceeds over the
    bounding box in step order. Returns None when every staircase is
    blocked by ``forbidden`` tiles.
    """
    forbidden = forbidden or set()
    cost_fn = scalar_edge_cost(graph, cost_fn)
    dx = goal[0] - start[0]
    dy = goal[1] - start[1]
    sx = 1 if dx >= 0 else -1
    sy = 1 if dy >= 0 else -1
    nx, ny = abs(dx), abs(dy)

    def tile_at(i: int, j: int) -> Tile:
        return (start[0] + sx * i, start[1] + sy * j)

    cost: Dict[Tuple[int, int], float] = {(0, 0): 0.0}
    came: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for i in range(nx + 1):
        for j in range(ny + 1):
            if (i, j) == (0, 0):
                continue
            here = tile_at(i, j)
            if here in forbidden and here != goal:
                cost[(i, j)] = INF
                continue
            best = INF
            src: Optional[Tuple[int, int]] = None
            if i > 0 and cost.get((i - 1, j), INF) != INF:
                c = cost[(i - 1, j)] + cost_fn(graph, tile_at(i - 1, j), here)
                if c < best:
                    best, src = c, (i - 1, j)
            if j > 0 and cost.get((i, j - 1), INF) != INF:
                c = cost[(i, j - 1)] + cost_fn(graph, tile_at(i, j - 1), here)
                if c < best:
                    best, src = c, (i, j - 1)
            cost[(i, j)] = best
            if src is not None:
                came[(i, j)] = src
    if cost.get((nx, ny), INF) == INF:
        return None
    path: List[Tile] = []
    cursor = (nx, ny)
    while True:
        path.append(tile_at(*cursor))
        if cursor == (0, 0):
            break
        cursor = came[cursor]
    path.reverse()
    return path


def reduce_congestion(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    cost_fn: EdgeCost = soft_congestion_cost,
    passes: int = 1,
) -> int:
    """Swap two-paths for cheaper equal-length staircases, in place.

    Buffer annotations survive only on tiles common to old and new paths;
    since the intent is a *final* cleanup, buffers on the interior of a
    rerouted two-path are re-anchored by clearing and re-applying trunk
    buffers onto the new interior at the same distance from the head.

    Returns:
        The number of two-paths improved.
    """
    improved = 0
    cost_fn = scalar_edge_cost(graph, cost_fn)
    for _ in range(passes):
        for name in sorted(routes):
            tree = routes[name]
            for old_path in tree.two_paths():
                head, tail = old_path[0], old_path[-1]
                # Only consider already-monotone-replaceable spans; a
                # detouring two-path is longer than the staircase and
                # swapping it would *reduce* wirelength, which is fine,
                # but the paper's step is equal-length, so skip those.
                span = abs(head[0] - tail[0]) + abs(head[1] - tail[1])
                if span != len(old_path) - 1 or span < 2:
                    continue
                # Record buffer counts along the old interior (interior
                # nodes are degree-2: at most a trunk buffer plus one
                # decoupling buffer toward the single child).
                offsets = [
                    (k, tree.node(t).buffer_count())
                    for k, t in enumerate(old_path[1:-1], start=1)
                    if tree.node(t).buffer_count()
                ]
                old_cost = 0.0
                for a, b in zip(old_path, old_path[1:]):
                    graph.add_wire(a, b, -1)
                for a, b in zip(old_path, old_path[1:]):
                    old_cost += cost_fn(graph, a, b)
                forbidden = (set(tree.nodes) - set(old_path[1:-1])) - {head, tail}
                new_path = best_monotone_path(
                    graph, head, tail, cost_fn, forbidden
                )
                if new_path is None or new_path == old_path:
                    for a, b in zip(old_path, old_path[1:]):
                        graph.add_wire(a, b, 1)
                    continue
                new_cost = sum(
                    cost_fn(graph, a, b) for a, b in zip(new_path, new_path[1:])
                )
                if new_cost >= old_cost - 1e-12:
                    for a, b in zip(old_path, old_path[1:]):
                        graph.add_wire(a, b, 1)
                    continue
                # Move buffers off the interior before surgery. Kinds are
                # released per kind and re-anchored as the default: the
                # moved-to tile is a fresh placement, and the caller
                # re-runs buffer insertion (which re-sizes) afterwards.
                for k, count in offsets:
                    node = tree.node(old_path[k])
                    for kind, kcount in node.kind_counts().items():
                        graph.use_site(old_path[k], -kcount, kind)
                    node.trunk_buffer = False
                    node.trunk_kind = ""
                    node.decoupled_children.clear()
                    node.decoupled_kinds.clear()
                tree.replace_two_path(old_path, new_path)
                for a, b in zip(new_path, new_path[1:]):
                    graph.add_wire(a, b, 1)
                # Re-anchor the same buffer counts at the same offsets.
                for k, count in offsets:
                    node = tree.node(new_path[k])
                    node.trunk_buffer = True
                    if count > 1:
                        node.decoupled_children.add(new_path[k + 1])
                    graph.use_site(new_path[k], count)
                improved += 1
    return improved
