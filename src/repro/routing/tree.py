"""Route trees embedded in the tile graph.

A :class:`RouteTree` is a tree over *tiles*: the root is the tile containing
the net's driver, every tree edge joins 4-adjacent tiles, and each node may
carry buffer annotations produced by Stage 3/4:

* a *trunk* buffer at node ``v`` drives everything downstream of ``v``;
* a *decoupling* buffer at ``v`` toward child ``w`` drives only the branch
  rooted at ``w`` (paper Fig. 8 cases c/d). Both kinds may coexist in the
  same tile — the paper explicitly allows multiple buffers per tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.tilegraph.graph import Tile, TileGraph


@dataclass(frozen=True)
class BufferSpec:
    """One buffer assignment.

    ``drives_child is None`` marks a trunk buffer driving all branches below
    ``tile``; otherwise the buffer decouples the branch toward that child.
    ``kind`` names the :class:`repro.technology.BufferKind` realized on the
    site; the empty string means the library default (the planning
    repeater), which keeps payloads and signatures byte-identical to the
    pre-library format whenever only the default is used.
    """

    tile: Tile
    drives_child: Optional[Tile] = None
    kind: str = ""


@dataclass
class RouteNode:
    """One tile of a route tree."""

    tile: Tile
    parent: Optional["RouteNode"] = None
    children: List["RouteNode"] = field(default_factory=list)
    is_sink: bool = False
    #: True when a trunk buffer is placed at this node.
    trunk_buffer: bool = False
    #: Child tiles whose branch is driven by a decoupling buffer here.
    decoupled_children: Set[Tile] = field(default_factory=set)
    #: Kind of the trunk buffer ("" = library default).
    trunk_kind: str = ""
    #: Non-default kinds of decoupling buffers, keyed by child tile.
    #: Children absent from the map carry the default kind.
    decoupled_kinds: Dict[Tile, str] = field(default_factory=dict)

    @property
    def degree(self) -> int:
        return len(self.children) + (1 if self.parent else 0)

    def buffer_count(self) -> int:
        return (1 if self.trunk_buffer else 0) + len(self.decoupled_children)

    def kind_counts(self) -> Dict[str, int]:
        """Buffer counts at this node keyed by kind name ("" = default)."""
        out: Dict[str, int] = {}
        if self.trunk_buffer:
            out[self.trunk_kind] = out.get(self.trunk_kind, 0) + 1
        for child in self.decoupled_children:
            kind = self.decoupled_kinds.get(child, "")
            out[kind] = out.get(kind, 0) + 1
        return out


class RouteTree:
    """A net's tile-level route with buffer annotations.

    Construction is via :meth:`from_paths` (union of tile paths reduced to a
    tree) or :meth:`from_parent_map`. Each tile appears at most once.
    """

    def __init__(self, root: RouteNode, nodes: Dict[Tile, RouteNode], net_name: str = ""):
        self.root = root
        self.nodes = nodes
        self.net_name = net_name
        # Memoized topology queries; invalidated by replace_two_path (the
        # only post-construction topology mutator).
        self._edges_cache: Optional[List[Tuple[Tile, Tile]]] = None
        self._wl_mm_cache: Optional[Tuple[TileGraph, float]] = None
        self._postorder_cache: Optional[List[RouteNode]] = None
        self._preorder_cache: Optional[List[RouteNode]] = None
        self._tile_indices_cache: "Optional[Tuple[int, object]]" = None

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_parent_map(
        cls,
        source: Tile,
        parent: Dict[Tile, Tile],
        sinks: Sequence[Tile],
        net_name: str = "",
    ) -> "RouteTree":
        """Build from a child->parent tile map rooted at ``source``.

        Every sink must be reachable from the root via the map. Tiles not
        on any source-sink path are pruned.
        """
        # Keep only tiles on some sink->source chain.
        keep: Set[Tile] = {source}
        for sink in sinks:
            t = sink
            chain = []
            while t != source:
                if t in keep:
                    break
                chain.append(t)
                if t not in parent:
                    raise RoutingError(f"sink tile {t} is not connected to source {source}")
                t = parent[t]
            keep.update(chain)

        nodes: Dict[Tile, RouteNode] = {t: RouteNode(tile=t) for t in keep}
        root = nodes[source]
        for t in keep:
            if t == source:
                continue
            p = parent[t]
            nodes[t].parent = nodes[p]
            nodes[p].children.append(nodes[t])
        for node in nodes.values():
            node.children.sort(key=lambda n: n.tile)
        for sink in sinks:
            nodes[sink].is_sink = True
        return cls(root, nodes, net_name)

    @classmethod
    def from_paths(
        cls,
        source: Tile,
        paths: Sequence[Sequence[Tile]],
        sinks: Sequence[Tile],
        net_name: str = "",
    ) -> "RouteTree":
        """Build from tile paths whose union connects source and sinks.

        The union of path edges may contain cycles (paths produced
        independently often cross); a BFS from the source extracts a
        spanning tree of the union, which every sink must touch.
        """
        adjacency: Dict[Tile, Set[Tile]] = {source: set()}
        for path in paths:
            for a, b in zip(path, path[1:]):
                if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                    raise RoutingError(f"path step {a} -> {b} is not 4-adjacent")
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)
        parent: Dict[Tile, Tile] = {}
        seen = {source}
        frontier = [source]
        while frontier:
            nxt: List[Tile] = []
            for u in frontier:
                for v in sorted(adjacency.get(u, ())):
                    if v not in seen:
                        seen.add(v)
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        for sink in sinks:
            if sink not in seen:
                raise RoutingError(f"sink tile {sink} not reached by the given paths")
        return cls.from_parent_map(source, parent, sinks, net_name)

    # ------------------------------------------------------------------ #
    # Topology queries                                                   #
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> Tile:
        return self.root.tile

    @property
    def sink_tiles(self) -> List[Tile]:
        return sorted(n.tile for n in self.nodes.values() if n.is_sink)

    def __contains__(self, tile: Tile) -> bool:
        return tile in self.nodes

    def node(self, tile: Tile) -> RouteNode:
        if tile not in self.nodes:
            raise RoutingError(f"tile {tile} is not on net {self.net_name!r}")
        return self.nodes[tile]

    def edges(self) -> List[Tuple[Tile, Tile]]:
        """All (parent_tile, child_tile) edges, preorder (memoized).

        Stage-2 cost evaluation walks every net's edges repeatedly; the
        list is built once and reused until the topology mutates (see
        :meth:`replace_two_path`). Treat the result as read-only.
        """
        cache = self._edges_cache
        if cache is None:
            cache = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                for child in node.children:
                    cache.append((node.tile, child.tile))
                    stack.append(child)
            self._edges_cache = cache
        return cache

    def _invalidate_topology(self) -> None:
        """Drop memoized edge/wirelength values after a topology change."""
        self._edges_cache = None
        self._wl_mm_cache = None
        self._postorder_cache = None
        self._preorder_cache = None
        self._tile_indices_cache = None

    def num_edges(self) -> int:
        return len(self.nodes) - 1

    def wirelength_tiles(self) -> int:
        """Routed length in tile units (== edge count)."""
        return self.num_edges()

    def wirelength_mm(self, graph: TileGraph) -> float:
        cached = self._wl_mm_cache
        if cached is not None and cached[0] is graph:
            return cached[1]
        value = sum(graph.edge_length_mm(u, v) for u, v in self.edges())
        self._wl_mm_cache = (graph, value)
        return value

    def postorder(self) -> List[RouteNode]:
        """Children-before-parents order (memoized; treat as read-only).

        Every buffering solver and the length rule walk this order per
        visit; like :meth:`edges` the list survives until the topology
        mutates (annotation changes do not invalidate it).
        """
        out = self._postorder_cache
        if out is None:
            out = []
            stack: List[Tuple[RouteNode, bool]] = [(self.root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    out.append(node)
                else:
                    stack.append((node, True))
                    for child in node.children:
                        stack.append((child, False))
            self._postorder_cache = out
        return out

    def preorder(self) -> List[RouteNode]:
        """Parents-before-children order (memoized; treat as read-only)."""
        out = self._preorder_cache
        if out is None:
            out = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                out.append(node)
                stack.extend(reversed(node.children))
            self._preorder_cache = out
        return out

    def tile_indices(self, ny: int):
        """Flat tile indices (``x * ny + y``) of every node (memoized).

        Iteration order matches ``self.nodes`` so vectorized gathers can
        be zipped back against the node map. Treat as read-only.
        """
        cached = self._tile_indices_cache
        if cached is not None and cached[0] == ny:
            return cached[1]
        import numpy as np

        idx = np.fromiter(
            (t[0] * ny + t[1] for t in self.nodes),
            dtype=np.int64,
            count=len(self.nodes),
        )
        self._tile_indices_cache = (ny, idx)
        return idx

    def validate(self) -> None:
        """Check tree structure invariants; raises RoutingError on breakage."""
        seen: Set[Tile] = set()
        for node in self.preorder():
            if node.tile in seen:
                raise RoutingError(f"tile {node.tile} appears twice")
            seen.add(node.tile)
            for child in node.children:
                if child.parent is not node:
                    raise RoutingError(f"broken parent link at {child.tile}")
                du = abs(node.tile[0] - child.tile[0]) + abs(node.tile[1] - child.tile[1])
                if du != 1:
                    raise RoutingError(f"non-adjacent edge {node.tile} -> {child.tile}")
            for dec in node.decoupled_children:
                if dec not in {c.tile for c in node.children}:
                    raise RoutingError(f"decoupled child {dec} missing at {node.tile}")
        if seen != set(self.nodes):
            raise RoutingError("node map does not match reachable tree")

    # ------------------------------------------------------------------ #
    # Buffer annotations                                                 #
    # ------------------------------------------------------------------ #

    def clear_buffers(self) -> None:
        for node in self.nodes.values():
            node.trunk_buffer = False
            node.trunk_kind = ""
            node.decoupled_children.clear()
            node.decoupled_kinds.clear()

    def buffer_specs(self) -> List[BufferSpec]:
        """All buffers on this net, deterministic order."""
        out: List[BufferSpec] = []
        for node in sorted(self.nodes.values(), key=lambda n: n.tile):
            if node.trunk_buffer:
                out.append(BufferSpec(node.tile, None, node.trunk_kind))
            for child in sorted(node.decoupled_children):
                out.append(
                    BufferSpec(node.tile, child, node.decoupled_kinds.get(child, ""))
                )
        return out

    def buffer_count(self) -> int:
        return sum(node.buffer_count() for node in self.nodes.values())

    def buffer_counts(self) -> Dict[Tile, int]:
        """Per-tile counts of this net's current buffer annotations."""
        out: Dict[Tile, int] = {}
        for node in self.nodes.values():
            count = node.buffer_count()
            if count:
                out[node.tile] = count
        return out

    def buffer_kind_counts(self) -> Dict[Tile, Dict[str, int]]:
        """Per-tile, per-kind counts ("" = default) for kind-aware rips."""
        out: Dict[Tile, Dict[str, int]] = {}
        for node in self.nodes.values():
            counts = node.kind_counts()
            if counts:
                out[node.tile] = counts
        return out

    def apply_buffers(self, specs: Sequence[BufferSpec]) -> None:
        """Install buffer annotations (clearing any existing ones)."""
        self.clear_buffers()
        for spec in specs:
            node = self.node(spec.tile)
            if spec.drives_child is None:
                node.trunk_buffer = True
                node.trunk_kind = spec.kind
            else:
                if spec.drives_child not in {c.tile for c in node.children}:
                    raise RoutingError(
                        f"{spec.tile} has no child {spec.drives_child} to decouple"
                    )
                node.decoupled_children.add(spec.drives_child)
                if spec.kind:
                    node.decoupled_kinds[spec.drives_child] = spec.kind
                else:
                    node.decoupled_kinds.pop(spec.drives_child, None)

    # ------------------------------------------------------------------ #
    # Tile-graph usage                                                   #
    # ------------------------------------------------------------------ #

    def add_usage(self, graph: TileGraph) -> None:
        """Record this net's wires and buffers on the graph."""
        for u, v in self.edges():
            graph.add_wire(u, v, 1)
        for node in self.nodes.values():
            if node.trunk_buffer or node.decoupled_children:
                for kind, count in node.kind_counts().items():
                    graph.use_site(node.tile, count, kind)

    def remove_usage(self, graph: TileGraph) -> None:
        """Remove this net's wires and buffers from the graph."""
        for u, v in self.edges():
            graph.add_wire(u, v, -1)
        for node in self.nodes.values():
            if node.trunk_buffer or node.decoupled_children:
                for kind, count in node.kind_counts().items():
                    graph.use_site(node.tile, -count, kind)

    # ------------------------------------------------------------------ #
    # Two-path decomposition (Stage 4)                                   #
    # ------------------------------------------------------------------ #

    def two_paths(self) -> List[List[Tile]]:
        """Decompose into two-paths (paper Section III-D).

        A two-path starts and ends at a Steiner node (degree >= 3), the
        source, or a sink, and contains only degree-2 pass-through tiles in
        between. Returned head-first, where the head is the endpoint nearer
        the source (its upstream end).
        """
        def is_endpoint(node: RouteNode) -> bool:
            return (
                node is self.root
                or node.is_sink
                or len(node.children) >= 2
            )

        out: List[List[Tile]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                path = [node.tile, child.tile]
                walker = child
                while not is_endpoint(walker) and len(walker.children) == 1:
                    walker = walker.children[0]
                    path.append(walker.tile)
                out.append(path)
                stack.append(walker)
        return out

    def replace_two_path(self, old_path: List[Tile], new_path: List[Tile]) -> None:
        """Swap the interior of a two-path for a new tile path.

        ``old_path`` and ``new_path`` must share head (index 0) and tail
        (index -1). The new interior tiles must not collide with any other
        tile of the tree. Buffer annotations on removed tiles are dropped;
        the caller is expected to re-run buffer insertion afterwards.
        """
        if old_path[0] != new_path[0] or old_path[-1] != new_path[-1]:
            raise RoutingError("replacement path must keep the same endpoints")
        head, tail = old_path[0], old_path[-1]
        interior_old = old_path[1:-1]
        interior_new = new_path[1:-1]
        occupied = set(self.nodes) - set(interior_old)
        for t in interior_new:
            if t in occupied:
                raise RoutingError(f"replacement tile {t} collides with the tree")
        head_node = self.node(head)
        tail_node = self.node(tail)
        # Detach: remove old interior nodes and the link into the tail.
        first_old = self.node(old_path[1]) if interior_old else tail_node
        head_node.children = [c for c in head_node.children if c is not first_old]
        head_node.decoupled_children.discard(first_old.tile)
        head_node.decoupled_kinds.pop(first_old.tile, None)
        for t in interior_old:
            del self.nodes[t]
        # Attach new interior.
        prev = head_node
        for t in interior_new:
            node = RouteNode(tile=t, parent=prev)
            prev.children.append(node)
            prev.children.sort(key=lambda n: n.tile)
            self.nodes[t] = node
            prev = node
        tail_node.parent = prev
        prev.children.append(tail_node)
        prev.children.sort(key=lambda n: n.tile)
        self._invalidate_topology()
