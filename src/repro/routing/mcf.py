"""Approximate multicommodity-flow global routing.

The paper notes RABID "could alternatively begin with the solution from
any global router, e.g., the multicommodity flow-based approach of
[Albrecht, ISPD 2000]". This module provides that alternative: a
Garg-Konemann-style fractional router with exponential edge-length
updates, followed by per-net rounding to the least-congested candidate
tree.

Algorithm sketch:

1. every edge starts with length ``delta / W(e)``;
2. for ``iterations`` rounds, each net is routed by a tree-growing
   Dijkstra under the current lengths; the tree receives fractional flow
   and every used edge's length is multiplied by
   ``1 + epsilon / W(e)`` (scaled by the edge's share of capacity), so
   popular cuts become expensive and later rounds route around them;
3. each net keeps the distinct candidate trees seen across rounds;
   rounding picks, net by net (most-constrained first), the candidate
   minimizing the resulting maximum edge congestion.

This is deliberately the *simple* member of the MCF family — enough to
serve as a drop-in Stage-1/2 replacement (``RabidConfig(router="mcf")``)
and to compare against the Prim-Dijkstra + rip-up default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netlist import Net, Netlist
from repro.obs import NULL_TRACER
from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph
from repro.utils.rng import make_rng


@dataclass
class McfOptions:
    """Fractional-routing parameters.

    Attributes:
        iterations: fractional rounds; more rounds, better duals.
        epsilon: length-update aggressiveness (0 < epsilon <= 1).
        window_margin: Dijkstra search-window margin in tiles.
        seed: rounding tie-break seed; candidates tied on the
            (max-congestion, total-congestion) objective are broken by
            one seeded draw, so rounding is explicitly deterministic.
    """

    iterations: int = 6
    epsilon: float = 0.5
    window_margin: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("MCF needs at least one iteration")
        if not 0 < self.epsilon <= 1:
            raise ConfigurationError("epsilon must be in (0, 1]")


@dataclass
class McfResult:
    """The fractional router's full output.

    Beyond the rounded trees, the result surfaces the dual state the
    length updates converged to — the raw material for lower-bound
    oracles (:mod:`repro.bounds`) and congestion diagnostics:

    ``edge_lengths``
        final exponential length per flat edge id (``inf`` on
        zero-capacity edges).
    ``congestion_duals``
        normalized dual weight ``l(e) * W(e) / sum`` per flat edge id —
        a probability vector over edges; mass concentrates on the cuts
        the fractional flow fought over.
    """

    routes: Dict[str, RouteTree]
    edge_lengths: List[float] = field(repr=False)
    congestion_duals: List[float] = field(repr=False)

    def top_congested_edges(self, count: int = 10) -> List[Tuple[int, float]]:
        """The ``count`` highest-dual flat edge ids, heaviest first."""
        order = sorted(
            range(len(self.congestion_duals)),
            key=lambda eid: (-self.congestion_duals[eid], eid),
        )
        return [
            (eid, self.congestion_duals[eid]) for eid in order[:count]
        ]


class McfRouter:
    """Fractional MCF routing with greedy least-congestion rounding."""

    def __init__(
        self,
        graph: TileGraph,
        options: "McfOptions | None" = None,
        tracer=None,
    ):
        self.graph = graph
        self.options = options or McfOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Dual edge lengths, flat per edge id (the maze kernel's
        # ``cost_array``); zero-capacity edges are priced unroutable.
        self._lengths: List[float] = [
            1.0 / cap if cap > 0 else float("inf")
            for cap in graph.edge_capacity.tolist()
        ]

    def _edge_length(self, graph: TileGraph, u: Tile, v: Tile) -> float:
        return self._lengths[graph.edge_id(u, v)]

    def _bump(self, u: Tile, v: Tile) -> None:
        cap = self.graph.wire_capacity(u, v)
        if cap <= 0:
            return
        eid = self.graph.edge_id(u, v)
        self._lengths[eid] *= 1.0 + self.options.epsilon / cap

    def route_all(self, netlist: Netlist) -> Dict[str, RouteTree]:
        """Route every net; the graph's wire usage is written in place.

        Returns the selected tree per net; ``graph`` usage reflects them.
        """
        return self.route_all_result(netlist).routes

    def route_all_result(self, netlist: Netlist) -> McfResult:
        """Like :meth:`route_all` but returns the full :class:`McfResult`
        (rounded trees plus final edge lengths and congestion duals)."""
        candidates: Dict[str, List[RouteTree]] = {n.name: [] for n in netlist}
        pins: Dict[str, Tuple[Tile, List[Tile]]] = {}
        for net in netlist:
            source = self.graph.tile_of(net.source.location)
            sinks = [self.graph.tile_of(p) for p in net.sink_locations()]
            pins[net.name] = (source, sinks)

        for round_index in range(self.options.iterations):
            with self.tracer.span("mcf.round", **{"round": round_index}):
                for net in netlist:
                    source, sinks = pins[net.name]
                    tree = route_net_on_tiles(
                        self.graph,
                        source,
                        sinks,
                        cost_array=self._lengths,
                        net_name=net.name,
                        window_margin=self.options.window_margin,
                        tracer=self.tracer,
                    )
                    for u, v in tree.edges():
                        self._bump(u, v)
                    seen = candidates[net.name]
                    signature = frozenset(
                        (min(u, v), max(u, v)) for u, v in tree.edges()
                    )
                    if all(
                        signature
                        != frozenset((min(a, b), max(a, b)) for a, b in t.edges())
                        for t in seen
                    ):
                        seen.append(tree)
                        if self.tracer.enabled:
                            self.tracer.count("mcf_candidate_trees")
        with self.tracer.span("mcf.rounding"):
            routes = self._round(netlist, candidates)
        return McfResult(
            routes=routes,
            edge_lengths=list(self._lengths),
            congestion_duals=self.congestion_duals(),
        )

    def congestion_duals(self) -> List[float]:
        """Normalized dual weight ``l(e) * W(e)`` per flat edge id.

        Sums to 1 over positive-capacity edges (all zeros before any
        capacity exists); heavy entries mark the cuts the length updates
        penalized hardest.
        """
        raw = [
            length * cap if cap > 0 else 0.0
            for length, cap in zip(
                self._lengths, self.graph.edge_capacity.tolist()
            )
        ]
        total = sum(raw)
        if total <= 0:
            return raw
        return [value / total for value in raw]

    def _round(
        self,
        netlist: Netlist,
        candidates: Dict[str, List[RouteTree]],
    ) -> Dict[str, RouteTree]:
        """Greedy rounding: most-constrained nets pick first.

        Ordering and selection are fully deterministic: nets tie-break
        on name, and candidates tied on the congestion objective are
        resolved by a single draw from the options seed.
        """
        order = sorted(
            (n.name for n in netlist),
            key=lambda name: (-len(candidates[name][0].nodes), name),
        )
        rng = make_rng(self.options.seed)
        chosen: Dict[str, RouteTree] = {}
        for name in order:
            best_cost: Tuple[float, float] = (float("inf"), float("inf"))
            tied: List[RouteTree] = []
            for tree in candidates[name]:
                worst = 0.0
                total = 0.0
                for u, v in tree.edges():
                    cap = self.graph.wire_capacity(u, v)
                    use = self.graph.wire_usage(u, v) + 1
                    ratio = use / cap if cap else float("inf")
                    worst = max(worst, ratio)
                    total += ratio
                cost = (worst, total)
                if cost < best_cost:
                    best_cost = cost
                    tied = [tree]
                elif cost == best_cost:
                    tied.append(tree)
            assert tied
            best_tree = (
                tied[0]
                if len(tied) == 1
                else tied[int(rng.integers(0, len(tied)))]
            )
            best_tree.add_usage(self.graph)
            chosen[name] = best_tree
        return chosen


def mcf_initial_routes(
    graph: TileGraph,
    netlist: Netlist,
    options: "McfOptions | None" = None,
    tracer=None,
) -> Dict[str, RouteTree]:
    """Convenience wrapper: route a whole netlist MCF-style.

    The graph must carry no prior usage for these nets; usage for the
    selected trees is recorded on return.
    """
    return McfRouter(graph, options, tracer=tracer).route_all(netlist)
