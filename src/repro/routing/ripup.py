"""Nair-style rip-up-and-reroute (Stage 2).

Every net is ripped up and rerouted in a fixed order (the paper sorts by
ascending delay), even nets that violate nothing — improving uncongested
nets frees capacity for later ones and avoids local minima. The loop runs
until either ``max_iterations`` full passes complete or no edge overflows.

With ``workers > 1`` the pass is executed in *bounding-box-disjoint
batches*: the net order is cut into maximal prefixes whose expanded route
boxes are pairwise disjoint, every net of a batch is ripped up, the batch
is rerouted concurrently against the frozen usage state, and the results
are committed serially in the original order.

Two parallel backends exist. The default ``"pool"`` backend ships each
batch to a persistent shared-memory worker-process pool
(:mod:`repro.parallel`): boxes use the router's *first* window margin and
workers report an escalation flag, so a speculative result is committed
exactly when its search provably read only state identical to the
sequential loop's — anything else is rerouted serially against the live
graph, recreating the sequential state exactly. The legacy ``"threads"``
backend routes batches on in-process threads with 4x-margin boxes and a
containment check; its output is independent of the thread count (and
matches sequential whenever no search escapes its box, which a window
that large makes rare). ``workers=1`` (the default) runs the original
loop unchanged.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER
from repro.routing.maze import (
    RoutingWorkspace,
    congestion_cost,
    route_net_on_tiles,
)
from repro.routing.tree import RouteTree
from repro.tilegraph.congestion import wire_congestion_stats
from repro.tilegraph.graph import TileGraph

Box = Tuple[int, int, int, int]


@dataclass
class RipupOptions:
    """Options for :func:`ripup_and_reroute`.

    Attributes:
        max_iterations: full passes over the net list (paper: 3).
        radius_weight: PD trade-off used when rerouting (paper: 0.4).
        window_margin: maze-router search window margin in tiles.
        workers: reroute batches of box-disjoint nets with this many
            workers; 1 routes strictly sequentially (byte-identical
            results, the default).
        backend: parallel engine for ``workers > 1``: ``"pool"`` (the
            shared-memory worker-process pool, default) or ``"threads"``
            (the legacy in-process thread batches). Both are
            byte-identical to sequential at every worker count.
    """

    max_iterations: int = 3
    radius_weight: float = 0.4
    window_margin: int = 6
    workers: int = 1
    backend: str = "pool"

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ConfigurationError("max_iterations must be >= 0")
        if self.radius_weight < 0:
            raise ConfigurationError("radius_weight must be >= 0")
        if self.window_margin < 0:
            raise ConfigurationError("window_margin must be >= 0")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.backend not in ("pool", "threads"):
            raise ConfigurationError(
                f"unknown stage2 backend {self.backend!r}; "
                "expected 'pool' or 'threads'"
            )


def ripup_and_reroute(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    options: "RipupOptions | None" = None,
    on_pass_end: "Callable[[int], None] | None" = None,
    tracer=None,
    pool=None,
) -> int:
    """Rip up and reroute every net per pass until congestion clears.

    Args:
        graph: tile graph carrying the current usage of all ``routes``.
        routes: net name -> current route; mutated in place with new routes.
        order: net processing order (paper: ascending delay).
        options: iteration/rerouting knobs (including ``workers``).
        on_pass_end: optional callback after each full pass (pass index).
        tracer: optional :class:`repro.obs.Tracer`; each pass becomes a
            ``stage2.pass`` span and each net emits ``ripped_up`` /
            ``rerouted`` events plus the ``nets_rerouted`` counter;
            parallel passes also count ``stage2.batches``.
        pool: optional :class:`repro.parallel.WorkerPool` to run the
            ``"pool"`` backend on (shared with Stage 3 / the planner);
            when omitted a private pool is created and closed here.

    Returns:
        Number of full passes executed.
    """
    options = options or RipupOptions()
    tracer = tracer if tracer is not None else NULL_TRACER
    executor = None
    tls = None
    session = None
    own_pool = None
    if options.workers > 1 and len(order) > 1:
        if options.backend == "pool":
            from repro.parallel import Stage2Session, WorkerPool

            if pool is None:
                pool = own_pool = WorkerPool(options.workers, tracer=tracer)
            session = Stage2Session(pool, graph, options)
        else:
            executor = ThreadPoolExecutor(
                max_workers=options.workers, thread_name_prefix="stage2"
            )
            tls = threading.local()
            graph.flat()  # build the shared CSR before any worker touches it
    passes = 0
    try:
        for iteration in range(options.max_iterations):
            with tracer.span("stage2.pass", **{"pass": iteration}):
                if session is not None:
                    _run_pass_pool(
                        graph, routes, order, options, session, tracer
                    )
                elif executor is not None:
                    _run_pass_parallel(
                        graph, routes, order, options, executor, tls, tracer
                    )
                else:
                    _run_pass_sequential(graph, routes, order, options, tracer)
                passes += 1
                if on_pass_end is not None:
                    on_pass_end(iteration)
            if wire_congestion_stats(graph).overflow == 0:
                break
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        if session is not None:
            session.close()
        if own_pool is not None:
            own_pool.close()
    return passes


def _run_pass_sequential(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    options: RipupOptions,
    tracer,
) -> None:
    for name in order:
        tree = routes[name]
        tree.remove_usage(graph)
        if tracer.enabled:
            tracer.event("ripped_up", name, stage="2", nodes=len(tree.nodes))
        new_tree = route_net_on_tiles(
            graph,
            tree.source,
            tree.sink_tiles,
            cost_fn=congestion_cost,
            radius_weight=options.radius_weight,
            net_name=name,
            window_margin=options.window_margin,
            tracer=tracer,
        )
        new_tree.add_usage(graph)
        routes[name] = new_tree
        if tracer.enabled:
            tracer.count("nets_rerouted")
            tracer.event("rerouted", name, stage="2", nodes=len(new_tree.nodes))


# --------------------------------------------------------------------- #
# Parallel pass                                                         #
# --------------------------------------------------------------------- #


def _net_box(graph: TileGraph, tree: RouteTree, margin: int) -> Box:
    """Expanded bounding box of everything a net's reroute may touch.

    Covers the current route *and* the pins it will be rerouted between,
    expanded by the largest windowed search margin (4x the base margin —
    the router's second escalation step). Only the final full-grid retry
    can read outside this box; :func:`_tree_within` catches that case.
    """
    xs = [t[0] for t in tree.nodes]
    ys = [t[1] for t in tree.nodes]
    return (
        max(0, min(xs) - margin),
        max(0, min(ys) - margin),
        min(graph.nx - 1, max(xs) + margin),
        min(graph.ny - 1, max(ys) + margin),
    )


def _boxes_overlap(a: Box, b: Box) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


def _tree_within(tree: RouteTree, box: Box) -> bool:
    x0, y0, x1, y1 = box
    return all(
        x0 <= t[0] <= x1 and y0 <= t[1] <= y1 for t in tree.nodes
    )


def _route_worker(
    graph: TileGraph,
    tree: RouteTree,
    name: str,
    options: RipupOptions,
    tls,
) -> RouteTree:
    """Route one net in a worker thread (read-only graph access).

    Each thread keeps its own :class:`RoutingWorkspace`; the tracer is not
    thread-safe, so workers run untraced (the coordinating thread emits
    the per-net events at commit time).
    """
    ws = getattr(tls, "workspace", None)
    if ws is None or ws.num_tiles != graph.num_tiles:
        ws = RoutingWorkspace(graph.num_tiles)
        tls.workspace = ws
    return route_net_on_tiles(
        graph,
        tree.source,
        tree.sink_tiles,
        cost_fn=congestion_cost,
        radius_weight=options.radius_weight,
        net_name=name,
        window_margin=options.window_margin,
        workspace=ws,
    )


def _run_pass_parallel(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    options: RipupOptions,
    executor: ThreadPoolExecutor,
    tls,
    tracer,
) -> None:
    """One full pass in box-disjoint batches; commits stay in net order."""
    cache = graph.cost_cache()
    margin = options.window_margin * 4
    n = len(order)
    idx = 0
    while idx < n:
        # Maximal prefix of the remaining order with pairwise-disjoint
        # boxes. Keeping it a *prefix* (stop at the first overlap rather
        # than skipping ahead) preserves the paper's net order exactly:
        # the concatenation of all batches is the original order.
        batch: List[str] = [order[idx]]
        boxes: List[Box] = [_net_box(graph, routes[order[idx]], margin)]
        j = idx + 1
        while j < n:
            box = _net_box(graph, routes[order[j]], margin)
            if any(_boxes_overlap(box, b) for b in boxes):
                break
            batch.append(order[j])
            boxes.append(box)
            j += 1
        idx = j
        if tracer.enabled:
            tracer.count("stage2.batches")
        if len(batch) == 1:
            _run_pass_sequential(graph, routes, batch, options, tracer)
            continue
        # Rip up the whole batch, then freeze the cost state: with every
        # batch member removed and both cost lists refreshed up front,
        # workers only ever *read* the graph and the cache.
        for name in batch:
            tree = routes[name]
            tree.remove_usage(graph)
            if tracer.enabled:
                tracer.event(
                    "ripped_up", name, stage="2", nodes=len(tree.nodes)
                )
        cache.strict_costs()
        cache.soft_costs()
        futures = [
            executor.submit(
                _route_worker, graph, routes[name], name, options, tls
            )
            for name in batch
        ]
        results = [f.result() for f in futures]  # barrier: wait for all
        for name, box, new_tree in zip(batch, boxes, results):
            if not _tree_within(new_tree, box):
                # The search escalated to the full grid and escaped its
                # box, so it may have read edges other batch members
                # already committed to — redo it against current state.
                new_tree = route_net_on_tiles(
                    graph,
                    new_tree.source,
                    new_tree.sink_tiles,
                    cost_fn=congestion_cost,
                    radius_weight=options.radius_weight,
                    net_name=name,
                    window_margin=options.window_margin,
                    tracer=tracer,
                )
            new_tree.add_usage(graph)
            routes[name] = new_tree
            if tracer.enabled:
                tracer.count("nets_rerouted")
                tracer.event(
                    "rerouted", name, stage="2", nodes=len(new_tree.nodes)
                )


# --------------------------------------------------------------------- #
# Shared-memory pool pass                                               #
# --------------------------------------------------------------------- #


def _box_contains_any(box: Box, tiles) -> bool:
    if not tiles:
        return False
    x0, y0, x1, y1 = box
    return any(x0 <= t[0] <= x1 and y0 <= t[1] <= y1 for t in tiles)


def _reroute_serial(
    graph: TileGraph,
    tree: RouteTree,
    name: str,
    options: RipupOptions,
    tracer,
) -> RouteTree:
    """Route one already-ripped net against the live graph (traced)."""
    return route_net_on_tiles(
        graph,
        tree.source,
        tree.sink_tiles,
        cost_fn=congestion_cost,
        radius_weight=options.radius_weight,
        net_name=name,
        window_margin=options.window_margin,
        tracer=tracer,
    )


def _run_pass_pool(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    options: RipupOptions,
    session,
    tracer,
) -> None:
    """One full pass on the worker pool, in box-disjoint batches.

    Batches use the *first* search-window margin (not the 4x escalation
    margin of the thread path): workers report whether their search
    escalated past that window, so the boxes only need to cover
    non-escalated reads — which keeps batches long. Commit order is the
    net order; a worker result is taken only when its search stayed in
    its window AND no earlier serially-redone net dirtied its box, so
    every committed tree is exactly the sequential loop's tree.
    """
    from repro.parallel import PoolError
    from repro.parallel.stage2 import rebuild_tree

    margin = options.window_margin
    n = len(order)
    idx = 0
    while idx < n:
        batch: List[str] = [order[idx]]
        boxes: List[Box] = [_net_box(graph, routes[order[idx]], margin)]
        j = idx + 1
        while j < n:
            box = _net_box(graph, routes[order[j]], margin)
            if any(_boxes_overlap(box, b) for b in boxes):
                break
            batch.append(order[j])
            boxes.append(box)
            j += 1
        idx = j
        if tracer.enabled:
            tracer.count("stage2.batches")
        if len(batch) == 1:
            _run_pass_sequential(graph, routes, batch, options, tracer)
            continue
        old = {name: routes[name] for name in batch}
        for name in batch:
            tree = old[name]
            tree.remove_usage(graph)
            if tracer.enabled:
                tracer.event(
                    "ripped_up", name, stage="2", nodes=len(tree.nodes)
                )
        try:
            results = session.route_batch(batch, routes)
        except PoolError:
            # The pool could not deliver the batch even after respawns
            # and retries; fall back to serial rerouting below.
            if tracer.enabled:
                tracer.count("stage2.pool_fallbacks")
            results = None
        # Restore the pre-batch usage, then replay the commits in exact
        # net order, ripping each net again just before its turn: a
        # serial redo then sees precisely the graph state the sequential
        # loop would show it (later batch members still routed).
        for name in batch:
            old[name].add_usage(graph)
        dirty: set = set()
        for name, box in zip(batch, boxes):
            old[name].remove_usage(graph)
            if results is not None:
                pairs, escalated = results[name]
            else:
                pairs, escalated = None, True
            if not escalated and not _box_contains_any(box, dirty):
                new_tree = rebuild_tree(
                    old[name].source, pairs, old[name].sink_tiles, name
                )
            else:
                # Escalated past its window (or an earlier serial redo
                # touched this box): the speculative result may have read
                # stale edges — redo against the live graph.
                new_tree = _reroute_serial(
                    graph, old[name], name, options, tracer
                )
                dirty.update(new_tree.nodes)
                if results is not None and tracer.enabled:
                    tracer.count("stage2.speculation_misses")
            new_tree.add_usage(graph)
            routes[name] = new_tree
            if tracer.enabled:
                tracer.count("nets_rerouted")
                tracer.event(
                    "rerouted", name, stage="2", nodes=len(new_tree.nodes)
                )


def reroute_order_by_delay(
    delays: Dict[str, float], ascending: bool = True
) -> List[str]:
    """Net order sorted by delay (paper Stage 2: smallest first)."""
    return sorted(delays, key=lambda n: (delays[n], n), reverse=not ascending)


# --------------------------------------------------------------------- #
# Dirty-region queries (incremental re-planning)                        #
# --------------------------------------------------------------------- #


def net_window_box(graph: TileGraph, tree: RouteTree, margin: int) -> Box:
    """Bounding box of everything a net's reroute may read.

    The public face of :func:`_net_box`: the incremental planning service
    uses it to decide which nets a dirty tile region can influence. A
    net routed with window margin ``m`` should be queried with
    ``margin = 4 * m`` — the router's largest windowed escalation; only
    the final full-grid retry can read outside that box.
    """
    return _net_box(graph, tree, margin)


def nets_intersecting(
    routes: Dict[str, RouteTree],
    dirty: "set[Tuple[int, int]] | frozenset",
    graph: TileGraph,
    margin: int = 0,
    names: "Sequence[str] | None" = None,
) -> List[str]:
    """Nets whose route (or search window) touches a dirty tile set.

    Args:
        routes: net name -> current route.
        dirty: tiles whose state (sites, capacity, or usage) changed.
        graph: the tile graph the routes live on.
        margin: 0 tests exact tree-tile intersection (buffer-side
            dirtiness); a positive margin tests the expanded window box
            (wire-side dirtiness, where a reroute *reads* beyond its own
            tiles).
        names: subset of nets to test (defaults to all of ``routes``).

    Returns:
        Matching net names, sorted.
    """
    if not dirty:
        return []
    out: List[str] = []
    for name in names if names is not None else routes:
        tree = routes[name]
        if margin <= 0:
            if any(t in dirty for t in tree.nodes):
                out.append(name)
            continue
        x0, y0, x1, y1 = _net_box(graph, tree, margin)
        if any(x0 <= t[0] <= x1 and y0 <= t[1] <= y1 for t in dirty):
            out.append(name)
    return sorted(out)
