"""Nair-style rip-up-and-reroute (Stage 2).

Every net is ripped up and rerouted in a fixed order (the paper sorts by
ascending delay), even nets that violate nothing — improving uncongested
nets frees capacity for later ones and avoids local minima. The loop runs
until either ``max_iterations`` full passes complete or no edge overflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER
from repro.routing.maze import congestion_cost, route_net_on_tiles
from repro.routing.tree import RouteTree
from repro.tilegraph.congestion import wire_congestion_stats
from repro.tilegraph.graph import TileGraph


@dataclass
class RipupOptions:
    """Options for :func:`ripup_and_reroute`.

    Attributes:
        max_iterations: full passes over the net list (paper: 3).
        radius_weight: PD trade-off used when rerouting (paper: 0.4).
        window_margin: maze-router search window margin in tiles.
    """

    max_iterations: int = 3
    radius_weight: float = 0.4
    window_margin: int = 6

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ConfigurationError("max_iterations must be >= 0")
        if self.radius_weight < 0:
            raise ConfigurationError("radius_weight must be >= 0")
        if self.window_margin < 0:
            raise ConfigurationError("window_margin must be >= 0")


def ripup_and_reroute(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    options: "RipupOptions | None" = None,
    on_pass_end: "Callable[[int], None] | None" = None,
    tracer=None,
) -> int:
    """Rip up and reroute every net per pass until congestion clears.

    Args:
        graph: tile graph carrying the current usage of all ``routes``.
        routes: net name -> current route; mutated in place with new routes.
        order: net processing order (paper: ascending delay).
        options: iteration/rerouting knobs.
        on_pass_end: optional callback after each full pass (pass index).
        tracer: optional :class:`repro.obs.Tracer`; each pass becomes a
            ``stage2.pass`` span and each net emits ``ripped_up`` /
            ``rerouted`` events plus the ``nets_rerouted`` counter.

    Returns:
        Number of full passes executed.
    """
    options = options or RipupOptions()
    tracer = tracer if tracer is not None else NULL_TRACER
    passes = 0
    for iteration in range(options.max_iterations):
        with tracer.span("stage2.pass", **{"pass": iteration}):
            for name in order:
                tree = routes[name]
                tree.remove_usage(graph)
                if tracer.enabled:
                    tracer.event(
                        "ripped_up", name, stage="2", nodes=len(tree.nodes)
                    )
                new_tree = route_net_on_tiles(
                    graph,
                    tree.source,
                    tree.sink_tiles,
                    cost_fn=congestion_cost,
                    radius_weight=options.radius_weight,
                    net_name=name,
                    window_margin=options.window_margin,
                    tracer=tracer,
                )
                new_tree.add_usage(graph)
                routes[name] = new_tree
                if tracer.enabled:
                    tracer.count("nets_rerouted")
                    tracer.event(
                        "rerouted", name, stage="2", nodes=len(new_tree.nodes)
                    )
            passes += 1
            if on_pass_end is not None:
                on_pass_end(iteration)
        if wire_congestion_stats(graph).overflow == 0:
            break
    return passes


def reroute_order_by_delay(
    delays: Dict[str, float], ascending: bool = True
) -> List[str]:
    """Net order sorted by delay (paper Stage 2: smallest first)."""
    return sorted(delays, key=lambda n: (delays[n], n), reverse=not ascending)
