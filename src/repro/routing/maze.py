"""Congestion-driven maze routing on the tile graph (Stage 2, Eq. 1).

``congestion_cost`` implements the paper's Eq. (1):

    Cost(e) = (w(e) + 1) / (W(e) - w(e))   when w(e)/W(e) < 1
              infinity                     otherwise

The router grows a tree from the source tile by wavefront (Dijkstra)
expansion: each unreached sink is connected to the partial tree by a
minimum-cost path, nearest sink first; shared prefixes make the result a
Steiner tree over tiles. An optional Prim-Dijkstra-style ``radius_weight``
biases attachment points by their congestion-cost distance from the source,
mirroring the Stage-1 trade-off on the tile graph.

When the strict cost leaves a sink unreachable (every remaining cut is at
capacity), the router retries with a *soft* cost that charges a large but
finite penalty per overfull edge, guaranteeing a route exists on a
connected grid.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph

EdgeCost = Callable[[TileGraph, Tile, Tile], float]

#: Soft-mode penalty charged per unit of overflow on a saturated edge.
OVERFLOW_PENALTY = 1_000.0


def congestion_cost(graph: TileGraph, u: Tile, v: Tile) -> float:
    """Paper Eq. (1): wires-crossing over wires-remaining, or infinity."""
    usage = graph.wire_usage(u, v)
    capacity = graph.wire_capacity(u, v)
    if capacity <= 0 or usage >= capacity:
        return float("inf")
    return (usage + 1) / (capacity - usage)


def soft_congestion_cost(graph: TileGraph, u: Tile, v: Tile) -> float:
    """Eq. (1) with saturation mapped to a large finite penalty.

    Keeps the router total: on a connected grid every sink is reachable,
    at the price of recorded overflow (which later passes will repair).
    """
    usage = graph.wire_usage(u, v)
    capacity = graph.wire_capacity(u, v)
    if capacity <= 0:
        return OVERFLOW_PENALTY * (usage + 1)
    if usage >= capacity:
        return OVERFLOW_PENALTY * (usage - capacity + 1)
    return (usage + 1) / (capacity - usage)


def _search_window(
    graph: TileGraph, tiles: Sequence[Tile], margin: int
) -> Tuple[int, int, int, int]:
    """Bounding box of ``tiles`` expanded by ``margin``, clipped to grid."""
    xs = [t[0] for t in tiles]
    ys = [t[1] for t in tiles]
    return (
        max(0, min(xs) - margin),
        max(0, min(ys) - margin),
        min(graph.nx - 1, max(xs) + margin),
        min(graph.ny - 1, max(ys) + margin),
    )


def _dijkstra_to_sink(
    graph: TileGraph,
    seeds: Dict[Tile, float],
    targets: Set[Tile],
    cost_fn: EdgeCost,
    window: Tuple[int, int, int, int],
) -> Tuple[Optional[Tuple[Tile, Dict[Tile, Tile]]], int]:
    """Wavefront from ``seeds`` until the cheapest target is settled.

    Returns ``(result, nodes_expanded)`` where ``result`` is (reached
    target, predecessor map) or None when unreachable within the window
    under finite costs, and ``nodes_expanded`` counts settled tiles.
    """
    x0, y0, x1, y1 = window
    dist: Dict[Tile, float] = dict(seeds)
    pred: Dict[Tile, Tile] = {}
    heap: List[Tuple[float, Tile]] = [(c, t) for t, c in seeds.items()]
    heapq.heapify(heap)
    settled: Set[Tile] = set()
    expanded = 0
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        expanded += 1
        if u in targets:
            return (u, pred), expanded
        for v in graph.neighbors(u):
            if not (x0 <= v[0] <= x1 and y0 <= v[1] <= y1):
                continue
            if v in settled:
                continue
            step = cost_fn(graph, u, v)
            if step == float("inf"):
                continue
            nd = d + step
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return None, expanded


def route_net_on_tiles(
    graph: TileGraph,
    source: Tile,
    sinks: Sequence[Tile],
    cost_fn: EdgeCost = congestion_cost,
    radius_weight: float = 0.0,
    net_name: str = "",
    window_margin: int = 6,
    tracer=None,
) -> RouteTree:
    """Route one net on the tile graph, congestion-aware.

    Args:
        graph: tile graph carrying current usage (this net must already be
            ripped up, i.e., its own usage removed).
        source: driver tile.
        sinks: sink tiles (duplicates and the source tile allowed).
        cost_fn: per-edge cost; defaults to the strict Eq. (1) cost.
        radius_weight: PD-style bias ``c``; attaching to a tree tile whose
            path cost from the source is ``P`` charges ``c * P`` up front.
        net_name: label for the returned tree.
        window_margin: initial search-window margin in tiles; doubled, then
            dropped (whole grid) if a sink is unreachable, before falling
            back to the soft cost.
        tracer: optional :class:`repro.obs.Tracer`; settled wavefront
            tiles accumulate into the ``maze_nodes_expanded`` counter.

    Returns:
        A :class:`RouteTree` connecting the source to every sink.

    Raises:
        RoutingError: only if even the soft cost cannot connect (grid
            disconnected), which cannot happen on a standard grid.
    """
    sink_set = {t for t in sinks}
    tree_tiles: Dict[Tile, float] = {source: 0.0}  # tile -> path cost from source
    parent: Dict[Tile, Tile] = {}
    pending: Set[Tile] = set(sink_set) - {source}

    all_pins = [source] + list(sinks)
    margins = [window_margin, window_margin * 4, max(graph.nx, graph.ny)]
    total_expanded = 0

    while pending:
        found = None
        used_cost: EdgeCost = cost_fn
        for attempt, margin in enumerate(margins):
            window = _search_window(graph, all_pins, margin)
            seeds = {
                t: radius_weight * path_cost for t, path_cost in tree_tiles.items()
            }
            found, expanded = _dijkstra_to_sink(
                graph, seeds, pending, used_cost, window
            )
            total_expanded += expanded
            if found is not None:
                break
            if attempt == len(margins) - 1 and used_cost is not soft_congestion_cost:
                # Full-grid strict search failed: relax to the soft cost
                # and rescan the margins.
                used_cost = soft_congestion_cost
                for margin2 in margins:
                    window = _search_window(graph, all_pins, margin2)
                    found, expanded = _dijkstra_to_sink(
                        graph, seeds, pending, used_cost, window
                    )
                    total_expanded += expanded
                    if found is not None:
                        break
                break
        if found is None:
            raise RoutingError(
                f"net {net_name!r}: sink(s) {sorted(pending)} unreachable from {source}"
            )
        target, pred = found
        # Walk back to the tree, recording path costs from the source.
        path = [target]
        while path[-1] not in tree_tiles:
            path.append(pred[path[-1]])
        attach = path[-1]
        path.reverse()  # attach ... target
        running = tree_tiles[attach]
        for a, b in zip(path, path[1:]):
            running += used_cost(graph, a, b)
            if b not in tree_tiles:
                tree_tiles[b] = running
                parent[b] = a
        pending -= set(tree_tiles)

    if tracer is not None and tracer.enabled and total_expanded:
        tracer.count("maze_nodes_expanded", total_expanded)
    sink_tiles = sorted(sink_set)
    return RouteTree.from_parent_map(source, parent, sink_tiles, net_name=net_name)
