"""Congestion-driven maze routing on the tile graph (Stage 2, Eq. 1).

``congestion_cost`` implements the paper's Eq. (1):

    Cost(e) = (w(e) + 1) / (W(e) - w(e))   when w(e)/W(e) < 1
              infinity                     otherwise

The router grows a tree from the source tile by wavefront (Dijkstra)
expansion: each unreached sink is connected to the partial tree by a
minimum-cost path, nearest sink first; shared prefixes make the result a
Steiner tree over tiles. An optional Prim-Dijkstra-style ``radius_weight``
biases attachment points by their congestion-cost distance from the source,
mirroring the Stage-1 trade-off on the tile graph.

When the strict cost leaves a sink unreachable (every remaining cut is at
capacity), the router retries with a *soft* cost that charges a large but
finite penalty per overfull edge, guaranteeing a route exists on a
connected grid.

The wavefront itself runs on the graph's flat CSR index
(:meth:`TileGraph.flat`): integer tile ids, per-edge costs read from the
:class:`~repro.tilegraph.cost_cache.CongestionCostCache` lists, and
preallocated dist/parent buffers held in a :class:`RoutingWorkspace` that
is reused across nets (stamped with a search epoch instead of cleared).
Because tile id ``x * ny + y`` is monotone in the ``(x, y)`` lexicographic
order the old object-keyed heap used for tie-breaking, and the cached
costs are bit-identical to the scalar formulas, the flat kernel settles
tiles in exactly the same order and returns byte-identical trees.

A caller-supplied ``cost_fn`` other than the two built-ins still works —
it takes the original dict-based wavefront — but the fast path also
accepts ``cost_array`` (per-edge-id costs) so bulk callers like the MCF
router can stay on the flat kernel.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.routing.tree import RouteTree
from repro.tilegraph.cost_cache import OVERFLOW_PENALTY
from repro.tilegraph.graph import Tile, TileGraph

EdgeCost = Callable[[TileGraph, Tile, Tile], float]

__all__ = [
    "OVERFLOW_PENALTY",
    "RoutingWorkspace",
    "congestion_cost",
    "route_net_on_tiles",
    "scalar_edge_cost",
    "soft_congestion_cost",
]

_INF = float("inf")


def congestion_cost(graph: TileGraph, u: Tile, v: Tile) -> float:
    """Paper Eq. (1): wires-crossing over wires-remaining, or infinity."""
    usage = graph.wire_usage(u, v)
    capacity = graph.wire_capacity(u, v)
    if capacity <= 0 or usage >= capacity:
        return float("inf")
    return (usage + 1) / (capacity - usage)


def soft_congestion_cost(graph: TileGraph, u: Tile, v: Tile) -> float:
    """Eq. (1) with saturation mapped to a large finite penalty.

    Keeps the router total: on a connected grid every sink is reachable,
    at the price of recorded overflow (which later passes will repair).
    """
    usage = graph.wire_usage(u, v)
    capacity = graph.wire_capacity(u, v)
    if capacity <= 0:
        return OVERFLOW_PENALTY * (usage + 1)
    if usage >= capacity:
        return OVERFLOW_PENALTY * (usage - capacity + 1)
    return (usage + 1) / (capacity - usage)


def scalar_edge_cost(graph: TileGraph, cost_fn: EdgeCost) -> EdgeCost:
    """Swap a built-in cost for its cached-lookup equivalent.

    The monotone and two-path optimizers evaluate edge costs one scalar at
    a time while *mutating usage between evaluations*, so they cannot hold
    a cost list across calls; the returned closure re-reads the cache on
    every lookup, which is still just a staleness check plus a list index
    once the dirty set is empty. Unrecognized cost functions are returned
    unchanged.
    """
    if cost_fn is congestion_cost:
        cache = graph.cost_cache()
        edge_id = graph.edge_id

        def _strict(_g: TileGraph, u: Tile, v: Tile) -> float:
            return cache.strict_costs()[edge_id(u, v)]

        return _strict
    if cost_fn is soft_congestion_cost:
        cache = graph.cost_cache()
        edge_id = graph.edge_id

        def _soft(_g: TileGraph, u: Tile, v: Tile) -> float:
            return cache.soft_costs()[edge_id(u, v)]

        return _soft
    return cost_fn


def _search_window(
    graph: TileGraph, tiles: Sequence[Tile], margin: int
) -> Tuple[int, int, int, int]:
    """Bounding box of ``tiles`` expanded by ``margin``, clipped to grid."""
    xs = [t[0] for t in tiles]
    ys = [t[1] for t in tiles]
    return (
        max(0, min(xs) - margin),
        max(0, min(ys) - margin),
        min(graph.nx - 1, max(xs) + margin),
        min(graph.ny - 1, max(ys) + margin),
    )


class RoutingWorkspace:
    """Preallocated wavefront buffers for one tile graph, reused per search.

    Buffers are *stamped*, not cleared: :meth:`begin` bumps an epoch and a
    slot only counts as written when its stamp matches, so starting a new
    search costs O(1) instead of O(num_tiles). One workspace serves any
    number of sequential searches; concurrent searches (parallel Stage 2)
    each need their own instance.
    """

    __slots__ = ("num_tiles", "epoch", "dist", "dist_stamp",
                 "parent", "parent_eid", "heap")

    def __init__(self, num_tiles: int) -> None:
        self.num_tiles = num_tiles
        self.epoch = 0
        self.dist: List[float] = [0.0] * num_tiles
        self.dist_stamp: List[int] = [0] * num_tiles
        self.parent: List[int] = [0] * num_tiles
        self.parent_eid: List[int] = [0] * num_tiles
        self.heap: List[Tuple[float, int]] = []

    def begin(self) -> int:
        """Start a fresh search; returns the new epoch."""
        self.epoch += 1
        del self.heap[:]
        return self.epoch


#: One lazily-created default workspace per graph (sequential callers).
_default_workspaces: "weakref.WeakKeyDictionary[TileGraph, RoutingWorkspace]" = (
    weakref.WeakKeyDictionary()
)


def workspace_for(graph: TileGraph) -> RoutingWorkspace:
    """The graph's shared sequential workspace (created on first use)."""
    ws = _default_workspaces.get(graph)
    if ws is None or ws.num_tiles != graph.num_tiles:
        ws = RoutingWorkspace(graph.num_tiles)
        _default_workspaces[graph] = ws
    return ws


def _dijkstra_flat(
    flat,
    ws: RoutingWorkspace,
    costs: Sequence[float],
    seeds: Sequence[Tuple[int, float]],
    targets: Set[int],
    window: Tuple[int, int, int, int],
) -> Tuple[int, int, int, int]:
    """Flat-index wavefront from ``seeds`` until the cheapest target settles.

    Returns ``(target_idx, expanded, pops, lookups)`` with ``target_idx``
    of -1 when no target is reachable within the window under finite
    costs. Parent links land in ``ws.parent``/``ws.parent_eid`` (valid for
    this epoch only). Seeds are expandable even when they lie outside the
    window — only *neighbor* tiles are window-clipped, matching the
    object-graph router.
    """
    x0, y0, x1, y1 = window
    epoch = ws.begin()
    dist = ws.dist
    dist_stamp = ws.dist_stamp
    parent = ws.parent
    parent_eid = ws.parent_eid
    adj = flat.adj
    ny = flat.ny
    # One byte per tile doubling as window membership AND not-yet-settled:
    # a single index in the inner loop instead of a window test plus a
    # settled-stamp compare. Settling clears the byte; out-of-window tiles
    # start cleared, which excludes them exactly like a window test would.
    live = bytearray(flat.num_tiles)
    row = b"\x01" * (y1 - y0 + 1)
    for x in range(x0, x1 + 1):
        base = x * ny + y0
        live[base : base + len(row)] = row
    heap = ws.heap
    for idx, c in seeds:
        dist[idx] = c
        dist_stamp[idx] = epoch
        # Seeds are expandable even when outside the window.
        live[idx] = 1
        heap.append((c, idx))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    expanded = 0
    pops = 0
    lookups = 0
    while heap:
        d, u = pop(heap)
        pops += 1
        if not live[u]:
            continue
        live[u] = 0
        expanded += 1
        if u in targets:
            return u, expanded, pops, lookups
        for v, eid in adj[u]:
            if not live[v]:
                continue
            step = costs[eid]
            lookups += 1
            if step == _INF:
                continue
            nd = d + step
            if dist_stamp[v] != epoch or nd < dist[v]:
                dist[v] = nd
                dist_stamp[v] = epoch
                parent[v] = u
                parent_eid[v] = eid
                push(heap, (nd, v))
    return -1, expanded, pops, lookups


def _dijkstra_to_sink(
    graph: TileGraph,
    seeds: Dict[Tile, float],
    targets: Set[Tile],
    cost_fn: EdgeCost,
    window: Tuple[int, int, int, int],
) -> Tuple[Optional[Tuple[Tile, Dict[Tile, Tile]]], int]:
    """Dict-keyed wavefront — the fallback for caller-supplied cost_fns.

    Returns ``(result, nodes_expanded)`` where ``result`` is (reached
    target, predecessor map) or None when unreachable within the window
    under finite costs, and ``nodes_expanded`` counts settled tiles.
    """
    x0, y0, x1, y1 = window
    dist: Dict[Tile, float] = dict(seeds)
    pred: Dict[Tile, Tile] = {}
    heap: List[Tuple[float, Tile]] = [(c, t) for t, c in seeds.items()]
    heapq.heapify(heap)
    settled: Set[Tile] = set()
    expanded = 0
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        expanded += 1
        if u in targets:
            return (u, pred), expanded
        for v in graph.neighbors(u):
            if not (x0 <= v[0] <= x1 and y0 <= v[1] <= y1):
                continue
            if v in settled:
                continue
            step = cost_fn(graph, u, v)
            if step == float("inf"):
                continue
            nd = d + step
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return None, expanded


def _route_net_flat(
    graph: TileGraph,
    source: Tile,
    sinks: Sequence[Tile],
    strict_costs: Sequence[float],
    soft_costs_fn: Callable[[], Sequence[float]],
    start_soft: bool,
    radius_weight: float,
    net_name: str,
    window_margin: int,
    tracer,
    workspace: Optional[RoutingWorkspace],
    cache_backed: bool,
) -> RouteTree:
    """Fast path: route with per-edge-id cost lists on the flat index."""
    flat = graph.flat()
    ws = workspace if workspace is not None else workspace_for(graph)
    tile_index = graph.tile_index
    tile_at = graph.tile_at

    sink_set = {t for t in sinks}
    source_idx = tile_index(source)
    # idx -> path cost from source; insertion order mirrors tree growth.
    tree_tiles: Dict[int, float] = {source_idx: 0.0}
    parent: Dict[Tile, Tile] = {}
    pending: Set[int] = {tile_index(t) for t in sink_set} - {source_idx}

    all_pins = [source] + list(sinks)
    margins = [window_margin, window_margin * 4, max(graph.nx, graph.ny)]
    total_expanded = 0
    total_pops = 0
    total_lookups = 0
    # True once any search read beyond the first window (wider margins or
    # the soft rescan). Soft-start callers are conservatively escalated.
    escalated = start_soft

    while pending:
        target = -1
        used_costs = soft_costs_fn() if start_soft else strict_costs
        soft = start_soft
        for attempt, margin in enumerate(margins):
            window = _search_window(graph, all_pins, margin)
            seeds = [
                (idx, radius_weight * path_cost)
                for idx, path_cost in tree_tiles.items()
            ]
            target, expanded, pops, lookups = _dijkstra_flat(
                flat, ws, used_costs, seeds, pending, window
            )
            total_expanded += expanded
            total_pops += pops
            total_lookups += lookups
            if target >= 0:
                break
            escalated = True
            if attempt == len(margins) - 1 and not soft:
                # Full-grid strict search failed: relax to the soft cost
                # and rescan the margins. The workspace (dist/parent/heap
                # buffers) carries over — only the epoch advances.
                soft = True
                used_costs = soft_costs_fn()
                for margin2 in margins:
                    window = _search_window(graph, all_pins, margin2)
                    target, expanded, pops, lookups = _dijkstra_flat(
                        flat, ws, used_costs, seeds, pending, window
                    )
                    total_expanded += expanded
                    total_pops += pops
                    total_lookups += lookups
                    if target >= 0:
                        break
                break
        if target < 0:
            unreachable = sorted(tile_at(i) for i in pending)
            raise RoutingError(
                f"net {net_name!r}: sink(s) {unreachable} unreachable from {source}"
            )
        # Walk back to the tree, recording path costs from the source.
        ws_parent = ws.parent
        ws_parent_eid = ws.parent_eid
        path = [target]
        while path[-1] not in tree_tiles:
            path.append(ws_parent[path[-1]])
        attach = path[-1]
        path.reverse()  # attach ... target
        running = tree_tiles[attach]
        for b in path[1:]:
            running += used_costs[ws_parent_eid[b]]
            if b not in tree_tiles:
                tree_tiles[b] = running
                parent[tile_at(b)] = tile_at(ws_parent[b])
        pending -= tree_tiles.keys()

    if tracer is not None and tracer.enabled:
        if total_expanded:
            tracer.count("maze_nodes_expanded", total_expanded)
        if total_pops:
            tracer.count("route.heap_pops", total_pops)
        if cache_backed and total_lookups:
            tracer.count("route.cache_hits", total_lookups)
    sink_tiles = sorted(sink_set)
    tree = RouteTree.from_parent_map(source, parent, sink_tiles, net_name=net_name)
    # Everything this search read lies inside the first window iff it
    # never escalated — the parallel Stage-2 commit relies on this flag.
    tree.search_escalated = escalated
    return tree


def _route_net_generic(
    graph: TileGraph,
    source: Tile,
    sinks: Sequence[Tile],
    cost_fn: EdgeCost,
    radius_weight: float,
    net_name: str,
    window_margin: int,
    tracer,
) -> RouteTree:
    """Dict-keyed path for caller-supplied cost functions."""
    sink_set = {t for t in sinks}
    tree_tiles: Dict[Tile, float] = {source: 0.0}  # tile -> path cost from source
    parent: Dict[Tile, Tile] = {}
    pending: Set[Tile] = set(sink_set) - {source}

    all_pins = [source] + list(sinks)
    margins = [window_margin, window_margin * 4, max(graph.nx, graph.ny)]
    total_expanded = 0
    escalated = cost_fn is soft_congestion_cost

    while pending:
        found = None
        used_cost: EdgeCost = cost_fn
        for attempt, margin in enumerate(margins):
            window = _search_window(graph, all_pins, margin)
            seeds = {
                t: radius_weight * path_cost for t, path_cost in tree_tiles.items()
            }
            found, expanded = _dijkstra_to_sink(
                graph, seeds, pending, used_cost, window
            )
            total_expanded += expanded
            if found is not None:
                break
            escalated = True
            if attempt == len(margins) - 1 and used_cost is not soft_congestion_cost:
                # Full-grid search failed: relax to the soft cost and
                # rescan the margins.
                used_cost = soft_congestion_cost
                for margin2 in margins:
                    window = _search_window(graph, all_pins, margin2)
                    found, expanded = _dijkstra_to_sink(
                        graph, seeds, pending, used_cost, window
                    )
                    total_expanded += expanded
                    if found is not None:
                        break
                break
        if found is None:
            raise RoutingError(
                f"net {net_name!r}: sink(s) {sorted(pending)} unreachable from {source}"
            )
        target, pred = found
        # Walk back to the tree, recording path costs from the source.
        path = [target]
        while path[-1] not in tree_tiles:
            path.append(pred[path[-1]])
        attach = path[-1]
        path.reverse()  # attach ... target
        running = tree_tiles[attach]
        for a, b in zip(path, path[1:]):
            running += used_cost(graph, a, b)
            if b not in tree_tiles:
                tree_tiles[b] = running
                parent[b] = a
        pending -= set(tree_tiles)

    if tracer is not None and tracer.enabled and total_expanded:
        tracer.count("maze_nodes_expanded", total_expanded)
    sink_tiles = sorted(sink_set)
    tree = RouteTree.from_parent_map(source, parent, sink_tiles, net_name=net_name)
    tree.search_escalated = escalated
    return tree


def route_net_on_tiles(
    graph: TileGraph,
    source: Tile,
    sinks: Sequence[Tile],
    cost_fn: EdgeCost = congestion_cost,
    radius_weight: float = 0.0,
    net_name: str = "",
    window_margin: int = 6,
    tracer=None,
    cost_array: Optional[Sequence[float]] = None,
    workspace: Optional[RoutingWorkspace] = None,
) -> RouteTree:
    """Route one net on the tile graph, congestion-aware.

    Args:
        graph: tile graph carrying current usage (this net must already be
            ripped up, i.e., its own usage removed).
        source: driver tile.
        sinks: sink tiles (duplicates and the source tile allowed).
        cost_fn: per-edge cost; defaults to the strict Eq. (1) cost. The
            two built-ins run on the flat kernel with cached cost lists;
            any other callable takes the dict-keyed fallback.
        radius_weight: PD-style bias ``c``; attaching to a tree tile whose
            path cost from the source is ``P`` charges ``c * P`` up front.
        net_name: label for the returned tree.
        window_margin: initial search-window margin in tiles; doubled, then
            dropped (whole grid) if a sink is unreachable, before falling
            back to the soft cost.
        tracer: optional :class:`repro.obs.Tracer`; accumulates
            ``maze_nodes_expanded``, ``route.heap_pops`` and (when the
            cost cache serves the search) ``route.cache_hits``.
        cost_array: per-edge-id costs overriding ``cost_fn`` on the flat
            kernel (bulk callers, e.g. the MCF router). The soft-cost
            fallback still applies when it leaves a sink unreachable.
        workspace: preallocated buffers to use; defaults to the graph's
            shared sequential workspace. Parallel callers must pass a
            per-thread instance.

    Returns:
        A :class:`RouteTree` connecting the source to every sink. The
        tree carries a ``search_escalated`` attribute — ``False``
        guarantees every edge the search read lies inside the first
        ``window_margin`` window around the pins (the speculation
        contract of the parallel Stage-2 pool backend).

    Raises:
        RoutingError: only if even the soft cost cannot connect (grid
            disconnected), which cannot happen on a standard grid.
    """
    if cost_array is not None:
        cache = graph.cost_cache()
        return _route_net_flat(
            graph, source, sinks, cost_array, cache.soft_costs, False,
            radius_weight, net_name, window_margin, tracer, workspace,
            cache_backed=False,
        )
    if cost_fn is congestion_cost:
        cache = graph.cost_cache()
        return _route_net_flat(
            graph, source, sinks, cache.strict_costs(), cache.soft_costs,
            False, radius_weight, net_name, window_margin, tracer, workspace,
            cache_backed=True,
        )
    if cost_fn is soft_congestion_cost:
        cache = graph.cost_cache()
        return _route_net_flat(
            graph, source, sinks, cache.soft_costs(), cache.soft_costs,
            True, radius_weight, net_name, window_margin, tracer, workspace,
            cache_backed=True,
        )
    return _route_net_generic(
        graph, source, sinks, cost_fn, radius_weight, net_name,
        window_margin, tracer,
    )
