"""Routing substrate: tree topologies and routers.

* :mod:`repro.routing.prim_dijkstra` — geometric Prim-Dijkstra spanning
  trees (Stage 1 backbone, radius/length trade-off).
* :mod:`repro.routing.steiner` — greedy edge-overlap removal that turns a
  spanning tree into a Steiner tree (paper Fig. 4).
* :mod:`repro.routing.tree` — :class:`RouteTree`, a net's route embedded in
  the tile graph, plus buffer-annotation storage.
* :mod:`repro.routing.embed` — embedding geometric trees onto the tile grid.
* :mod:`repro.routing.maze` — congestion-cost wavefront (maze) routing on
  the tile graph (Stage 2 rerouting, Eq. 1).
* :mod:`repro.routing.ripup` — the Nair-style rip-up-and-reroute driver.
"""

from repro.routing.tree import BufferSpec, RouteNode, RouteTree
from repro.routing.prim_dijkstra import prim_dijkstra_tree, GeometricTree
from repro.routing.steiner import remove_overlaps
from repro.routing.embed import embed_tree
from repro.routing.maze import route_net_on_tiles, congestion_cost
from repro.routing.ripup import RipupOptions, ripup_and_reroute
from repro.routing.monotone import best_monotone_path, is_monotone, reduce_congestion

__all__ = [
    "best_monotone_path",
    "is_monotone",
    "reduce_congestion",
    "BufferSpec",
    "RouteNode",
    "RouteTree",
    "prim_dijkstra_tree",
    "GeometricTree",
    "remove_overlaps",
    "embed_tree",
    "route_net_on_tiles",
    "congestion_cost",
    "RipupOptions",
    "ripup_and_reroute",
]
