"""Sweep execution: evaluate many scenarios, in-process or across a pool.

The unit of work is one scenario -> one :class:`EvalRecord`. Evaluation
is a full :func:`repro.service.engine.full_plan` — except when the
scenario is a pure delta of the sweep's base scenario
(:func:`repro.explore.space.delta_between`), in which case the worker
replays a shared baseline plan incrementally, which is several times
faster and provably the same plan (the service's byte-identical replay
property). Each worker process caches the baseline; under the ``fork``
start method the parent plans it once *before* spawning, so every
worker inherits it for free.

Failure policy is graceful degradation: a scenario that times out is
killed and recorded as ``timeout``, a worker that crashes (or an
evaluation that raises) records ``crashed`` — after ``retries`` extra
attempts — and the sweep always continues to the next scenario. Records
land in the :class:`ResultStore` as they finish, so killing the sweep
loses at most the in-flight scenarios; a re-run resumes from the store
and re-evaluates nothing that finished (``explore.cache_hits``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.candidates import INF
from repro.core.rabid import RabidConfig
from repro.errors import ConfigurationError, ReproError
from repro.explore.space import (
    AdaptiveBisection,
    ParameterSpace,
    SamplePoint,
    delta_between,
)
from repro.explore.store import EvalRecord, ResultStore, scenario_key
from repro.obs import NULL_TRACER
from repro.service.engine import PlanState, full_plan, plan_cost
from repro.service.incremental import incremental_replan
from repro.service.jobs import ScenarioSpec
from repro.timing.elmore import net_delay

#: Baseline plans cached per process (inherited by forked workers).
_BASELINE_CACHE: Dict[str, PlanState] = {}
#: Per-net delay reports of each cached baseline, computed once: a net
#: the replay did not re-solve keeps its exact topology and buffer
#: specs, so its Elmore delay is the baseline's.
_BASELINE_DELAYS: Dict[str, Dict[str, Any]] = {}


def metrics_from_state(state: PlanState, reuse_delays=None) -> Dict[str, Any]:
    """The objective vector the frontier consumes, from a planned state.

    Identical whether the state came from a scratch plan or an
    incremental replay (the replay reproduces the full plan's routes and
    buffers byte for byte, and the signature is recorded to prove it).
    ``reuse_delays`` maps net names to precomputed
    :class:`~repro.timing.elmore.DelayReport` objects known to still be
    valid — only nets absent from it are recomputed.
    """
    graph = state.graph
    failed = state.failed_nets
    tech = state.config.technology
    max_delay = 0.0
    delay_total = 0.0
    delay_count = 0
    for name, tree in state.routes.items():
        report = reuse_delays.get(name) if reuse_delays else None
        if report is None:
            report = net_delay(tree, graph, tech)
        max_delay = max(max_delay, report.max_delay)
        for value in report.sink_delays.values():
            delay_total += value
            delay_count += 1
    return {
        "site_budget": int(graph.sites.sum()),
        "wire_budget": int(graph.edge_capacity.sum()),
        "unassigned_nets": len(failed),
        "failed_nets": list(failed),
        "buffers": sum(len(o.specs) for o in state.outcomes.values()),
        "wirelength_tiles": sum(
            t.wirelength_tiles() for t in state.routes.values()
        ),
        "max_delay_ps": round(max_delay * 1e12, 3),
        "avg_delay_ps": round(
            (delay_total / delay_count * 1e12) if delay_count else 0.0, 3
        ),
        "cost": round(
            sum(o.cost for o in state.outcomes.values() if o.cost != INF), 6
        ),
        "signature": state.signature,
    }


def _baseline_for(base: ScenarioSpec, config: RabidConfig) -> PlanState:
    key = scenario_key(base, config)
    state = _BASELINE_CACHE.get(key)
    if state is None:
        state = _BASELINE_CACHE[key] = full_plan(base, config)
    if key not in _BASELINE_DELAYS:
        tech = state.config.technology
        _BASELINE_DELAYS[key] = {
            name: net_delay(tree, state.graph, tech)
            for name, tree in state.routes.items()
        }
    return state


def evaluate_scenario(
    scenario: ScenarioSpec,
    config: "RabidConfig | None" = None,
    base: "ScenarioSpec | None" = None,
    reuse_baseline: bool = True,
) -> Tuple[Dict[str, Any], str]:
    """Evaluate one scenario; returns ``(metrics, via)``.

    ``via`` is ``"incremental"`` when the scenario was a recognized delta
    of ``base`` and the replay succeeded, else ``"full"``.

    When ``config.bound`` is set, the certified lower-bound oracle runs
    after the plan and merges its per-scenario metrics
    (``lower_bound``, ``optimality_gap``, ``certified_infeasible``; see
    :func:`repro.bounds.gap.gap_metrics`) into the result. The oracle is
    deterministic and single-threaded, so the added metrics keep the
    sweep's byte-identity across worker counts.
    """
    config = config or RabidConfig()
    metrics, via = _plan_metrics(scenario, config, base, reuse_baseline)
    if config.bound:
        from repro.bounds.gap import gap_metrics

        metrics.update(gap_metrics(scenario, config, metrics))
    return metrics, via


def _plan_metrics(
    scenario: ScenarioSpec,
    config: RabidConfig,
    base: "ScenarioSpec | None",
    reuse_baseline: bool,
) -> Tuple[Dict[str, Any], str]:
    """The plan-side evaluation (incremental replay or scratch plan)."""
    if reuse_baseline and base is not None and base != scenario:
        delta = delta_between(base, scenario)
        if delta is not None:
            baseline = _baseline_for(base, config)
            baseline_delays = _BASELINE_DELAYS[scenario_key(base, config)]
            backup = baseline.backup()
            try:
                stats = incremental_replan(baseline, delta)
                fresh = set(stats.resolved_nets)
                metrics = metrics_from_state(
                    baseline,
                    reuse_delays={
                        name: report
                        for name, report in baseline_delays.items()
                        if name not in fresh
                    },
                )
                return metrics, "incremental"
            except ReproError:
                pass  # fall through to the scratch plan
            finally:
                baseline.restore(backup)
    return metrics_from_state(full_plan(scenario, config)), "full"


@dataclass
class SweepOptions:
    """Execution knobs for :func:`run_sweep`.

    Attributes:
        workers: worker processes; 1 evaluates in-process (no timeout
            enforcement, exceptions degrade to ``crashed`` records).
        timeout_s: per-scenario wall-clock budget (pool mode only); an
            expired worker is terminated and respawned.
        retries: extra attempts granted to crashed/timed-out scenarios.
        reuse_baseline: replay the shared baseline incrementally for
            delta-expressible scenarios.
        retry_failed: on resume, re-evaluate stored ``crashed``/
            ``timeout`` records (finished ``ok`` records are never
            re-evaluated).
        max_scenarios: stop the sweep after this many evaluations —
            remaining scenarios stay pending in the store for a resume.
        triage: routability triage gate mode (``"off"``, ``"certified"``,
            ``"estimate"`` — see :mod:`repro.workloads.triage`). A
            scenario the gate prunes is recorded as a ``pruned`` record
            (milliseconds) instead of being planned (seconds+), and a
            pruned record observes as *infeasible* in the bisect sampler.
            ``certified`` prunes only on proofs; ``estimate`` also prunes
            on the calibrated site-pressure heuristic.
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1
    reuse_baseline: bool = True
    retry_failed: bool = True
    max_scenarios: Optional[int] = None
    triage: str = "off"

    def __post_init__(self) -> None:
        from repro.workloads.triage import TRIAGE_MODES

        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be > 0")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.max_scenarios is not None and self.max_scenarios < 0:
            raise ConfigurationError("max_scenarios must be >= 0")
        if self.triage not in TRIAGE_MODES:
            raise ConfigurationError(
                f"unknown triage mode {self.triage!r}; expected one of "
                f"{TRIAGE_MODES}"
            )


# --------------------------------------------------------------------- #
# Worker process                                                        #
# --------------------------------------------------------------------- #

#: Pool handler spec for sweep evaluation tasks.
_EVAL_HANDLER = "repro.explore.executor:_evaluate_task"


def _evaluate_task(payload, ctx):
    """Pool handler: evaluate one ``(key, scenario_dict)`` task.

    The pool ``context`` is ``(base_dict, config_dict, reuse_baseline)``,
    parsed once per worker into ``ctx.scratch``. Raises on evaluation
    failure (the pool turns that into an ``"error"`` result).
    """
    setup = ctx.scratch.get("explore")
    if setup is None:
        base_dict, config_dict, reuse_baseline = ctx.context
        setup = ctx.scratch["explore"] = (
            ScenarioSpec.from_dict(base_dict) if base_dict else None,
            RabidConfig.from_dict(config_dict)
            if config_dict
            else RabidConfig(),
            reuse_baseline,
        )
    base, config, reuse_baseline = setup
    _key, scenario_dict = payload
    start = time.perf_counter()
    scenario = ScenarioSpec.from_dict(scenario_dict)
    metrics, via = evaluate_scenario(
        scenario, config, base=base, reuse_baseline=reuse_baseline
    )
    return {
        "metrics": metrics,
        "via": via,
        "seconds": time.perf_counter() - start,
    }


# --------------------------------------------------------------------- #
# The sweep                                                             #
# --------------------------------------------------------------------- #


def run_sweep(
    scenarios: List[ScenarioSpec],
    base: "ScenarioSpec | None" = None,
    config: "RabidConfig | None" = None,
    store: "ResultStore | None" = None,
    options: "SweepOptions | None" = None,
    tracer=None,
) -> Dict[str, EvalRecord]:
    """Evaluate ``scenarios`` and return ``{scenario_key: record}``.

    Scenarios already finished in ``store`` are returned from it without
    re-evaluation (counted as ``explore.cache_hits``); duplicates within
    ``scenarios`` are evaluated once. New records are appended to the
    store as they complete, so the sweep can be killed and resumed.
    """
    options = options or SweepOptions()
    config = config or RabidConfig()
    store = store if store is not None else ResultStore()
    tracer = tracer if tracer is not None else NULL_TRACER

    keyed: Dict[str, ScenarioSpec] = {}
    for scenario in scenarios:
        keyed.setdefault(scenario_key(scenario, config), scenario)
    pending: List[Tuple[str, ScenarioSpec]] = []
    results: Dict[str, EvalRecord] = {}
    for key, scenario in keyed.items():
        record = store.get(key)
        if record is not None and (
            record.finished or not options.retry_failed
        ):
            results[key] = record
            if tracer.enabled:
                tracer.count("explore.cache_hits")
            continue
        if options.triage != "off":
            pruned = _triage_prune(key, scenario, options.triage, tracer)
            if pruned is not None:
                store.append(pruned)
                results[key] = pruned
                continue
        pending.append((key, scenario))
    if options.max_scenarios is not None:
        pending = pending[: options.max_scenarios]
    if not pending:
        return results

    if options.workers == 1:
        _run_inline(pending, base, config, store, options, tracer, results)
    else:
        _run_pool(pending, base, config, store, options, tracer, results)
    return results


def _triage_prune(
    key: str, scenario: ScenarioSpec, mode: str, tracer
) -> Optional[EvalRecord]:
    """Run the triage gate on one scenario; a record means *prune it*.

    The verdict is deterministic (pure NumPy over the scenario's demand
    boxes), so the gate keeps the sweep's byte-identity across worker
    counts — it runs in the parent before any dispatch.
    """
    from repro.workloads.triage import triage_scenario

    verdict = triage_scenario(scenario, tracer=tracer)
    if not verdict.should_prune(mode):
        return None
    if tracer.enabled:
        tracer.count("explore.triage_pruned")
    return EvalRecord(
        key=key,
        scenario=scenario.to_dict(),
        status="pruned",
        error=(
            f"triage[{mode}] {verdict.verdict}: "
            f"site_pressure={verdict.site_pressure:.3f}, "
            f"cut_slack={verdict.cut_slack}, "
            f"reason={verdict.infeasible_reason or 'estimate'}"
        ),
        seconds=verdict.seconds,
        via="triage",
    )


def _finish(record: EvalRecord, store: ResultStore, results, tracer) -> None:
    store.append(record)
    results[record.key] = record
    if tracer.enabled:
        tracer.count("explore.scenarios")


def _run_inline(
    pending, base, config, store, options, tracer, results
) -> None:
    """Sequential in-process evaluation (workers == 1)."""
    for key, scenario in pending:
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter()
            try:
                metrics, via = evaluate_scenario(
                    scenario,
                    config,
                    base=base,
                    reuse_baseline=options.reuse_baseline,
                )
                record = EvalRecord(
                    key=key,
                    scenario=scenario.to_dict(),
                    status="ok",
                    metrics=metrics,
                    seconds=time.perf_counter() - start,
                    attempts=attempts,
                    via=via,
                )
            except Exception as exc:  # noqa: BLE001 - degrade, continue sweep
                record = EvalRecord(
                    key=key,
                    scenario=scenario.to_dict(),
                    status="crashed",
                    error=f"{type(exc).__name__}: {exc}",
                    seconds=time.perf_counter() - start,
                    attempts=attempts,
                )
            if record.status == "ok" or attempts > options.retries:
                _finish(record, store, results, tracer)
                break
            if tracer.enabled:
                tracer.count("explore.retries")


def _run_pool(
    pending, base, config, store, options, tracer, results
) -> None:
    """Process-pool evaluation with per-scenario timeout and respawn.

    Built on :class:`repro.parallel.WorkerPool`: the pool owns crash
    detection, respawn, retries and deadlines; this function only maps
    :class:`~repro.parallel.pool.TaskResult` objects onto the sweep's
    :class:`EvalRecord` contract.
    """
    from repro.parallel import WorkerPool

    base_dict = base.to_dict() if base is not None else None
    config_dict = config.as_dict()
    if options.reuse_baseline and base is not None and any(
        delta_between(base, scenario) is not None for _, scenario in pending
    ):
        # Plan the shared baseline in the parent before the pool forks
        # (it forks lazily on the first dispatch): under the Linux
        # ``fork`` start method every worker inherits the planned
        # baseline instead of replanning its own copy.
        _baseline_for(base, config)

    tasks = [
        (_EVAL_HANDLER, (key, scenario.to_dict()))
        for key, scenario in pending
    ]

    def on_result(index: int, result) -> None:
        key, scenario = pending[index]
        scenario_dict = scenario.to_dict()
        if result.ok:
            record = EvalRecord(
                key=key,
                scenario=scenario_dict,
                status="ok",
                metrics=result.value["metrics"],
                seconds=result.value["seconds"],
                attempts=result.attempts,
                via=result.value["via"],
            )
        elif result.status == "timeout":
            record = EvalRecord(
                key=key,
                scenario=scenario_dict,
                status="timeout",
                error=f"scenario exceeded {options.timeout_s}s",
                seconds=options.timeout_s or 0.0,
                attempts=result.attempts,
            )
        elif result.status == "crashed":
            record = EvalRecord(
                key=key,
                scenario=scenario_dict,
                status="crashed",
                error="worker process died",
                seconds=0.0,
                attempts=result.attempts,
            )
        else:  # the evaluation raised deterministically
            record = EvalRecord(
                key=key,
                scenario=scenario_dict,
                status="crashed",
                error=result.error,
                seconds=result.seconds,
                attempts=result.attempts,
            )
        _finish(record, store, results, tracer)

    def on_retry(index: int) -> None:
        if tracer.enabled:
            tracer.count("explore.retries")

    with WorkerPool(
        min(options.workers, len(pending)),
        context=(base_dict, config_dict, options.reuse_baseline),
        tracer=tracer,
    ) as pool:
        pool.run_tasks(
            tasks,
            timeout_s=options.timeout_s,
            retries=options.retries,
            on_result=on_result,
            on_retry=on_retry,
        )


# --------------------------------------------------------------------- #
# High-level drivers                                                    #
# --------------------------------------------------------------------- #


@dataclass
class ExploreResult:
    """A finished exploration: sampled points and their records."""

    space: ParameterSpace
    points: List[SamplePoint]
    #: scenario key per point (aligned with ``points``).
    keys: List[str]
    records: Dict[str, EvalRecord]
    #: cheapest-feasible boundaries per combination (bisect sampler only).
    boundaries: Optional[Dict[Tuple, Optional[int]]] = None
    seconds: float = 0.0

    def record_for(self, point: SamplePoint) -> Optional[EvalRecord]:
        return self.records.get(self.keys[self.points.index(point)])

    def rows(self) -> List[Dict[str, Any]]:
        """One flat dict per point: assignment + record summary."""
        out = []
        for point, key in zip(self.points, self.keys):
            record = self.records.get(key)
            row: Dict[str, Any] = dict(self.space.assignment(point))
            row["key"] = key
            if record is None:
                row["status"] = "pending"
            else:
                row["status"] = record.status
                row["via"] = record.via
                row["seconds"] = record.seconds
                if record.metrics:
                    row.update(
                        {
                            k: v
                            for k, v in record.metrics.items()
                            if k != "failed_nets"
                        }
                    )
            out.append(row)
        return out


def is_feasible(record: "EvalRecord | None") -> bool:
    """A scenario is feasible when it planned with zero unassigned nets."""
    return (
        record is not None
        and record.status == "ok"
        and record.metrics["unassigned_nets"] == 0
    )


def _seed_bisection_from_store(
    search: AdaptiveBisection,
    space: ParameterSpace,
    config: RabidConfig,
    store: ResultStore,
) -> list:
    """Narrow the bisection brackets with verdicts already in the store.

    Probes every (combination, axis value) point of the space against the
    store and feeds finished records to :meth:`AdaptiveBisection.seed`.
    When the store already holds a feasible point (the frontier's
    ``cheapest_feasible``), its value becomes the bracket's ``hi`` and
    the search bisects from it outward — a budget-capped resume can no
    longer burn its whole budget on infeasible endpoint probes and report
    zero feasible scenarios despite one being on record.

    Returns the seeded points (already observed; the search will not
    re-propose them).
    """
    axis_dim = space.dimensions[search.axis]
    seeds = []
    for combo in sorted(search.brackets):
        for x in axis_dim.values:
            values = search._values_for(combo, x)
            record = store.get(
                scenario_key(space.scenario_for(values), config)
            )
            if record is not None and record.finished:
                seeds.append((values, is_feasible(record)))
    search.seed(seeds)
    return [space.point(values) for values, _ in seeds]


def explore_space(
    space: ParameterSpace,
    sampler: str = "grid",
    samples: int = 32,
    seed: int = 0,
    bisect_dim: "str | None" = None,
    config: "RabidConfig | None" = None,
    store: "ResultStore | None" = None,
    options: "SweepOptions | None" = None,
    tracer=None,
) -> ExploreResult:
    """Sample a parameter space and evaluate every sampled scenario.

    ``sampler`` is ``"grid"``, ``"random"`` (Latin hypercube, needs
    ``samples``/``seed``), or ``"bisect"`` (adaptive boundary refinement,
    needs ``bisect_dim``). The bisect sampler runs propose/evaluate
    rounds until every bracket converges, so its point list grows with
    the search; grid and random evaluate one fixed batch.
    """
    options = options or SweepOptions()
    store = store if store is not None else ResultStore()
    start = time.perf_counter()
    boundaries = None
    if sampler == "grid":
        points = space.grid()
    elif sampler == "random":
        points = space.sample_random(samples, seed=seed)
    elif sampler == "bisect":
        if not bisect_dim:
            raise ConfigurationError("the bisect sampler needs bisect_dim")
        search = AdaptiveBisection(space, bisect_dim)
        points = _seed_bisection_from_store(
            search, space, config or RabidConfig(), store
        )
        if tracer is not None and tracer.enabled and points:
            tracer.count("explore.bisect_seeded", len(points))
        budget = options.max_scenarios
        while True:
            batch = search.propose()
            if not batch:
                break
            if budget is not None:
                batch = batch[:budget]
                if not batch:
                    break
            records = run_sweep(
                [p.scenario for p in batch],
                base=space.base,
                config=config,
                store=store,
                options=options,
                tracer=tracer,
            )
            points.extend(batch)
            evaluated = 0
            for point in batch:
                record = records.get(scenario_key(point.scenario, config or RabidConfig()))
                if record is None:
                    continue
                evaluated += 1
                if record.status == "ok":
                    search.observe(point.values, is_feasible(record))
                else:
                    # Treat a crashed/timed-out budget probe as infeasible
                    # so the bracket still converges.
                    search.observe(point.values, False)
            if budget is not None:
                budget = max(0, budget - evaluated)
        boundaries = search.boundaries()
        keys = [
            scenario_key(p.scenario, config or RabidConfig()) for p in points
        ]
        return ExploreResult(
            space=space,
            points=points,
            keys=keys,
            records={k: store.get(k) for k in keys if store.get(k) is not None},
            boundaries=boundaries,
            seconds=time.perf_counter() - start,
        )
    else:
        raise ConfigurationError(
            f"unknown sampler {sampler!r}; expected grid, random, or bisect"
        )
    records = run_sweep(
        [p.scenario for p in points],
        base=space.base,
        config=config,
        store=store,
        options=options,
        tracer=tracer,
    )
    keys = [scenario_key(p.scenario, config or RabidConfig()) for p in points]
    return ExploreResult(
        space=space,
        points=points,
        keys=keys,
        records=records,
        boundaries=boundaries,
        seconds=time.perf_counter() - start,
    )
