"""Content-addressed, resumable JSONL result store for sweeps.

Every evaluated scenario becomes one appended JSON line keyed by
:func:`scenario_key` — a SHA-256 over the scenario's canonical JSON, the
planner config, and the evaluation schema version. Identical scenarios
hash identically, so a killed sweep re-invoked against the same store
skips every finished scenario without comparing anything but hashes, and
two sweeps sharing scenarios share results.

The store is append-only and crash-tolerant: records are flushed line by
line, a truncated final line (the kill arriving mid-write) is ignored on
load, and a re-evaluated key simply appends a newer record that shadows
the older one. Records are schema-versioned on top of the
:mod:`repro.io.serialize` convention so future readers can migrate.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.errors import ConfigurationError
from repro.service.jobs import ScenarioSpec

#: Version of the evaluation record schema (bump on metric changes).
STORE_SCHEMA_VERSION = 1

#: Terminal statuses an evaluation record can carry. ``ok`` includes
#: infeasible plans (unassigned nets > 0) — the *evaluation* succeeded.
#: ``pruned`` means the routability triage gate skipped the evaluation
#: (the scenario is certified or estimated infeasible; see
#: :mod:`repro.workloads.triage`).
STATUSES = ("ok", "crashed", "timeout", "pruned")


def scenario_key(scenario: ScenarioSpec, config=None) -> str:
    """The scenario's content hash (stable across processes and runs)."""
    payload = {
        "store_schema": STORE_SCHEMA_VERSION,
        "scenario": scenario.to_dict(),
        "config": config.as_dict() if config is not None else None,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class EvalRecord:
    """One scenario's evaluation outcome.

    ``metrics`` is the objective dict the frontier consumes (present only
    for ``status == "ok"``); ``via`` records whether the evaluation ran a
    scratch ``full_plan`` or an incremental replay of the sweep baseline.
    """

    key: str
    scenario: Dict[str, Any]
    status: str
    metrics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    seconds: float = 0.0
    attempts: int = 1
    via: str = "full"
    recorded_at: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S")
    )

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ConfigurationError(
                f"unknown record status {self.status!r}; expected {STATUSES}"
            )
        if self.status == "ok" and self.metrics is None:
            raise ConfigurationError("an ok record needs metrics")

    @property
    def finished(self) -> bool:
        """Whether a resume should skip this scenario (vs retry it).

        ``pruned`` is terminal: the triage verdict is deterministic, so a
        resume under the same gate would only reproduce it.
        """
        return self.status in ("ok", "pruned")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": STORE_SCHEMA_VERSION,
            "key": self.key,
            "scenario": self.scenario,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "seconds": round(self.seconds, 4),
            "attempts": self.attempts,
            "via": self.via,
            "recorded_at": self.recorded_at,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EvalRecord":
        if d.get("version") != STORE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported result-store schema {d.get('version')!r}"
            )
        return cls(
            key=d["key"],
            scenario=d["scenario"],
            status=d["status"],
            metrics=d.get("metrics"),
            error=d.get("error"),
            seconds=d.get("seconds", 0.0),
            attempts=d.get("attempts", 1),
            via=d.get("via", "full"),
            recorded_at=d.get("recorded_at", ""),
        )


class ResultStore:
    """Append-only JSONL store, keyed by scenario hash.

    ``path=None`` keeps everything in memory (throwaway sweeps, tests).
    """

    def __init__(self, path: "str | None" = None):
        self.path = path
        self._records: Dict[str, EvalRecord] = {}
        if path is not None and os.path.exists(path):
            for record in self._read_lines(path):
                self._records[record.key] = record

    @staticmethod
    def _read_lines(path: str) -> Iterator[EvalRecord]:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield EvalRecord.from_dict(json.loads(line))
                except (ValueError, KeyError, ConfigurationError):
                    # A truncated or foreign line (e.g. the sweep was
                    # killed mid-write). Resume must survive it.
                    continue

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[EvalRecord]:
        return self._records.get(key)

    def finished(self, key: str) -> bool:
        record = self._records.get(key)
        return record is not None and record.finished

    def records(self) -> Dict[str, EvalRecord]:
        """All records, keyed by scenario hash (a copy)."""
        return dict(self._records)

    def append(self, record: EvalRecord) -> None:
        """Record one evaluation; newer records shadow older ones."""
        self._records[record.key] = record
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(record.to_dict(), sort_keys=True) + "\n"
                )
                fh.flush()
