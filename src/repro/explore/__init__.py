"""Design-space exploration: budget sweeps over planning scenarios.

The subsystem answers the paper's companion question to "does this
budget route and buffer": *what is the cheapest budget that still
does?* A :class:`ParameterSpace` enumerates scenario variants (buffer
site density, wire capacity, length limits, macro placements, net
count), :func:`run_sweep` / :func:`explore_space` evaluate them — in
process or across a worker pool, reusing the incremental planner when a
variant is a delta of the sweep baseline — into a resumable
content-addressed :class:`ResultStore`, and :mod:`repro.explore.frontier`
reduces the results to a Pareto frontier plus per-dimension sensitivity.

See ``docs/EXPLORE.md`` for the full tour, or ``repro explore`` for the
command-line front end.
"""

from repro.explore.executor import (
    ExploreResult,
    SweepOptions,
    evaluate_scenario,
    explore_space,
    is_feasible,
    metrics_from_state,
    run_sweep,
)
from repro.explore.frontier import (
    OBJECTIVES,
    frontier_report,
    pareto_frontier,
    render_frontier_table,
    render_sensitivity,
    report_bytes,
    sensitivity_report,
)
from repro.explore.space import (
    AdaptiveBisection,
    Dimension,
    ParameterSpace,
    SamplePoint,
    delta_between,
)
from repro.explore.store import (
    EvalRecord,
    ResultStore,
    scenario_key,
)

__all__ = [
    "AdaptiveBisection",
    "Dimension",
    "EvalRecord",
    "ExploreResult",
    "OBJECTIVES",
    "ParameterSpace",
    "ResultStore",
    "SamplePoint",
    "SweepOptions",
    "delta_between",
    "evaluate_scenario",
    "explore_space",
    "frontier_report",
    "is_feasible",
    "metrics_from_state",
    "pareto_frontier",
    "render_frontier_table",
    "render_sensitivity",
    "report_bytes",
    "run_sweep",
    "scenario_key",
    "sensitivity_report",
]
