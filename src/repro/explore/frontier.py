"""Pareto frontier and sensitivity analysis over sweep results.

The exploration question is "which resource budgets are worth
considering": a scenario is on the frontier when no other evaluated
scenario is at least as good on every objective and strictly better on
one. All objectives are minimized — feasibility is the
``unassigned_nets`` axis, so a cheap-but-infeasible scenario and an
expensive-but-clean one can both survive; the report makes the trade
explicit rather than hiding infeasible points.

Reports are canonical: entries are sorted by objective vector then key,
and only deterministic fields (metrics, keys, assignments) appear — no
timings, attempt counts, or timestamps. For a fixed seed the rendered
report is therefore byte-identical no matter how many workers evaluated
the sweep, which the test suite asserts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.explore.store import EvalRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.explore.executor import ExploreResult

#: Minimized objective axes, in report order. ``unassigned_nets`` first:
#: it is the feasibility axis the paper's budget question hinges on.
OBJECTIVES = (
    "unassigned_nets",
    "site_budget",
    "wire_budget",
    "wirelength_tiles",
    "max_delay_ps",
)

FRONTIER_SCHEMA_VERSION = 1


def objective_vector(record: EvalRecord) -> Tuple[float, ...]:
    """The record's minimized objective tuple (requires ``status == ok``)."""
    return tuple(record.metrics[name] for name in OBJECTIVES)


def dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """True when ``a`` is no worse on every axis and better on one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(
    records: "Iterable[EvalRecord] | Dict[str, EvalRecord]",
) -> List[EvalRecord]:
    """Non-dominated ``ok`` records, canonically ordered.

    Duplicate objective vectors all survive (they are genuinely tied);
    order is by objective vector then key so the result is deterministic
    regardless of input order.
    """
    if isinstance(records, dict):
        records = records.values()
    ok = sorted(
        (r for r in records if r.status == "ok"),
        key=lambda r: (objective_vector(r), r.key),
    )
    vectors = [objective_vector(r) for r in ok]
    frontier = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(vectors)
            if j != i
        ):
            frontier.append(ok[i])
    return frontier


def frontier_report(
    records: "Iterable[EvalRecord] | Dict[str, EvalRecord]",
    assignments: "Dict[str, Dict[str, Any]] | None" = None,
) -> Dict[str, Any]:
    """Canonical JSON-able summary of a sweep's outcome.

    ``assignments`` (scenario key -> parameter assignment, as produced by
    :meth:`ParameterSpace.assignment`) annotates frontier entries with
    the swept parameter values that produced them.
    """
    if isinstance(records, dict):
        records = list(records.values())
    else:
        records = list(records)
    by_status: Dict[str, int] = {
        "ok": 0, "crashed": 0, "timeout": 0, "pruned": 0,
    }
    for record in records:
        by_status[record.status] = by_status.get(record.status, 0) + 1
    frontier = pareto_frontier(records)
    feasible = [
        r for r in records
        if r.status == "ok" and r.metrics["unassigned_nets"] == 0
    ]
    cheapest = min(
        feasible,
        key=lambda r: (
            r.metrics["site_budget"],
            r.metrics["wire_budget"],
            r.key,
        ),
        default=None,
    )
    entries = []
    for record in frontier:
        entry: Dict[str, Any] = {"key": record.key}
        for name in OBJECTIVES:
            entry[name] = record.metrics[name]
        entry["buffers"] = record.metrics.get("buffers")
        entry["cost"] = record.metrics.get("cost")
        entry["feasible"] = record.metrics["unassigned_nets"] == 0
        if "optimality_gap" in record.metrics:
            # Bound-oracle sweeps report how far each point is from the
            # certified optimum, not just whether it planned.
            entry["lower_bound"] = record.metrics.get("lower_bound")
            entry["optimality_gap"] = record.metrics.get("optimality_gap")
            entry["certified_infeasible"] = record.metrics.get(
                "certified_infeasible", False
            )
        if assignments and record.key in assignments:
            entry["assignment"] = dict(
                sorted(assignments[record.key].items())
            )
        entries.append(entry)
    return {
        "version": FRONTIER_SCHEMA_VERSION,
        "objectives": list(OBJECTIVES),
        "evaluated": len(records),
        "by_status": by_status,
        "feasible": len(feasible),
        "frontier_size": len(entries),
        "frontier": entries,
        "no_feasible": (
            None if feasible else _no_feasible_record(records, assignments)
        ),
        "cheapest_feasible": (
            {
                "key": cheapest.key,
                "site_budget": cheapest.metrics["site_budget"],
                "wire_budget": cheapest.metrics["wire_budget"],
                **(
                    {"assignment": dict(
                        sorted(assignments[cheapest.key].items())
                    )}
                    if assignments and cheapest.key in assignments
                    else {}
                ),
            }
            if cheapest is not None
            else None
        ),
    }


def _gap_sort_value(record: EvalRecord) -> float:
    gap = record.metrics.get("optimality_gap")
    return gap if isinstance(gap, (int, float)) else float("inf")


def _no_feasible_record(
    records: List[EvalRecord],
    assignments: "Dict[str, Dict[str, Any]] | None" = None,
) -> Dict[str, Any]:
    """Explicit verdict for an all-infeasible sweep.

    Instead of a silently empty ``cheapest_feasible``, the report says
    so outright and points at the *nearest* evaluated scenario to the
    feasibility boundary: fewest unassigned nets, then (when the bound
    oracle ran) smallest optimality gap. ``certified_infeasible`` counts
    scenarios the dual certificate *proved* unroutable — those are not
    "the heuristic gave up", they are impossible at any effort.
    """
    ok = [r for r in records if r.status == "ok"]
    certified = sum(
        1 for r in ok if r.metrics.get("certified_infeasible")
    )
    nearest = min(
        ok,
        key=lambda r: (
            r.metrics["unassigned_nets"], _gap_sort_value(r), r.key
        ),
        default=None,
    )
    nearest_entry: "Dict[str, Any] | None" = None
    if nearest is not None:
        nearest_entry = {
            "key": nearest.key,
            "unassigned_nets": nearest.metrics["unassigned_nets"],
            "site_budget": nearest.metrics["site_budget"],
            "wire_budget": nearest.metrics["wire_budget"],
        }
        if "optimality_gap" in nearest.metrics:
            nearest_entry["optimality_gap"] = nearest.metrics[
                "optimality_gap"
            ]
            nearest_entry["certified_infeasible"] = nearest.metrics.get(
                "certified_infeasible", False
            )
        if assignments and nearest.key in assignments:
            nearest_entry["assignment"] = dict(
                sorted(assignments[nearest.key].items())
            )
    return {
        "message": "no feasible scenario",
        "evaluated_ok": len(ok),
        "certified_infeasible": certified,
        "nearest": nearest_entry,
    }


def report_bytes(report: Dict[str, Any]) -> bytes:
    """The report's canonical serialized form (the byte-identity contract)."""
    return (
        json.dumps(report, sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


# --------------------------------------------------------------------- #
# Sensitivity                                                           #
# --------------------------------------------------------------------- #


def sensitivity_report(result: "ExploreResult") -> Dict[str, Any]:
    """One-at-a-time sensitivity of each objective to each dimension.

    For every swept dimension, the analysis holds the *other* dimensions
    at their most frequently sampled combination (for a grid sweep that
    is simply the largest slice), orders the remaining points by the
    dimension's value, and reports each objective's response over that
    slice: the sampled values, the objective series, and the total range
    (max - min). Dimensions whose slice has fewer than two evaluated
    points report ``insufficient: true``.
    """
    dims = result.space.dimensions
    rows: List[Tuple[Tuple[Any, ...], EvalRecord]] = []
    for point, key in zip(result.points, result.keys):
        record = result.records.get(key)
        if record is not None and record.status == "ok":
            rows.append((point.values, record))
    out: Dict[str, Any] = {}
    for axis, dim in enumerate(dims):
        others: Dict[Tuple[Any, ...], List[Tuple[Any, EvalRecord]]] = {}
        for values, record in rows:
            combo = tuple(v for i, v in enumerate(values) if i != axis)
            others.setdefault(combo, []).append((values[axis], record))
        if not others:
            out[dim.label] = {"insufficient": True}
            continue
        combo = max(
            others, key=lambda c: (len(others[c]), tuple(map(repr, c)))
        )
        slice_rows: Dict[Any, EvalRecord] = {}
        for value, record in others[combo]:
            slice_rows.setdefault(value, record)
        if len(slice_rows) < 2:
            out[dim.label] = {"insufficient": True}
            continue
        ordered = sorted(slice_rows)
        series = {
            name: [slice_rows[v].metrics[name] for v in ordered]
            for name in OBJECTIVES
        }
        out[dim.label] = {
            "values": list(ordered),
            "held": {
                other.label: combo[i]
                for i, other in enumerate(
                    d for j, d in enumerate(dims) if j != axis
                )
            },
            "series": series,
            "range": {
                name: round(max(vals) - min(vals), 6)
                for name, vals in series.items()
            },
        }
    return out


# --------------------------------------------------------------------- #
# Rendering                                                             #
# --------------------------------------------------------------------- #


def render_frontier_table(
    report: Dict[str, Any], limit: "int | None" = None
) -> str:
    """Fixed-width text table of the frontier (CLI output)."""
    headers = ["feasible", *OBJECTIVES, "buffers", "assignment"]
    rows = []
    entries = report["frontier"][:limit] if limit else report["frontier"]
    for entry in entries:
        assignment = entry.get("assignment")
        rows.append(
            [
                "yes" if entry["feasible"] else "NO",
                *(str(entry[name]) for name in OBJECTIVES),
                str(entry.get("buffers", "")),
                (
                    " ".join(f"{k}={v}" for k, v in assignment.items())
                    if assignment
                    else "-"
                ),
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    summary = (
        f"{report['evaluated']} evaluated "
        f"({report['by_status'].get('ok', 0)} ok, "
        f"{report['by_status'].get('crashed', 0)} crashed, "
        f"{report['by_status'].get('timeout', 0)} timeout, "
        f"{report['by_status'].get('pruned', 0)} pruned), "
        f"{report['feasible']} feasible, "
        f"frontier {report['frontier_size']}"
    )
    cheapest = report.get("cheapest_feasible")
    if cheapest:
        budget = (
            f"cheapest feasible: sites={cheapest['site_budget']} "
            f"wire={cheapest['wire_budget']}"
        )
        if "assignment" in cheapest:
            budget += " (" + " ".join(
                f"{k}={v}" for k, v in cheapest["assignment"].items()
            ) + ")"
        summary += "\n" + budget
    no_feasible = report.get("no_feasible")
    if no_feasible:
        line = (
            f"no feasible scenario "
            f"({no_feasible['certified_infeasible']} certified infeasible)"
        )
        nearest = no_feasible.get("nearest")
        if nearest:
            line += (
                f"; nearest: unassigned={nearest['unassigned_nets']} "
                f"sites={nearest['site_budget']} "
                f"wire={nearest['wire_budget']}"
            )
            if nearest.get("optimality_gap") is not None:
                line += f" gap={nearest['optimality_gap']}"
            if "assignment" in nearest:
                line += " (" + " ".join(
                    f"{k}={v}" for k, v in nearest["assignment"].items()
                ) + ")"
        summary += "\n" + line
    return "\n".join(lines) + "\n\n" + summary


def render_sensitivity(report: Dict[str, Any]) -> str:
    """Text rendering of :func:`sensitivity_report` (CLI output)."""
    lines = []
    for label, info in report.items():
        if info.get("insufficient"):
            lines.append(f"{label}: insufficient samples")
            continue
        held = info.get("held") or {}
        held_txt = (
            " (holding " + " ".join(f"{k}={v}" for k, v in sorted(held.items())) + ")"
            if held
            else ""
        )
        lines.append(f"{label}: values {info['values']}{held_txt}")
        for name in OBJECTIVES:
            series = info["series"][name]
            lines.append(
                f"  {name}: {series}  (range {info['range'][name]})"
            )
    return "\n".join(lines)
