"""Typed parameter spaces over :class:`ScenarioSpec` deltas.

A :class:`ParameterSpace` is a base scenario plus an ordered tuple of
:class:`Dimension`\\ s, each varying one resource knob the paper sweeps:
buffer-site density (``total_sites`` or per-region ``B(v)`` overrides),
wire capacity ``W(e)``, the length limit ``L``, macro placements, and
net count. A *sample point* assigns one value per dimension and fully
determines a scenario, so every point is reproducible and
content-addressable (:mod:`repro.explore.store`).

Three samplers cover the sweep styles behind the paper's tables:

* :meth:`ParameterSpace.grid` — the full cartesian product;
* :meth:`ParameterSpace.sample_random` — seeded Latin-hypercube
  stratification, for spaces too large to enumerate;
* :class:`AdaptiveBisection` — iterative refinement around the
  feasible/infeasible boundary of one integer dimension, answering
  "what is the cheapest budget that still plans cleanly?" directly.

:func:`delta_between` recognizes when a target scenario is a pure delta
of the sweep's base scenario, which lets the executor evaluate it by
incremental replay of a shared baseline plan instead of a scratch plan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.service.jobs import (
    DeltaOp,
    DeltaSpec,
    ScenarioSpec,
    add_net,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)
from repro.utils.rng import make_rng

Tile = Tuple[int, int]


def _apply_total_sites(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    return replace(spec, total_sites=int(value))


def _apply_capacity(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    return replace(spec, capacity=int(value))


def _apply_length_limit(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    return replace(spec, length_limit=int(value))


def _apply_num_nets(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    return replace(spec, num_nets=int(value))


def _apply_macro_origin(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    if not 0 <= dim.index < len(spec.macros):
        raise ConfigurationError(
            f"macro_origin dimension index {dim.index} out of range "
            f"({len(spec.macros)} macros)"
        )
    x, y = (int(v) for v in value)
    macros = list(spec.macros)
    macros[dim.index] = replace(macros[dim.index], x=x, y=y)
    return replace(spec, macros=tuple(macros))


def _apply_region_sites(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    """Override ``B(v)`` to ``value`` on every tile of the dimension's region."""
    overrides = dict(spec.site_overrides)
    for tile in dim.tiles:
        overrides[tuple(tile)] = int(value)
    return replace(spec, site_overrides=tuple(sorted(overrides.items())))


def _apply_buffer_library(spec: ScenarioSpec, value, dim) -> ScenarioSpec:
    """Pin the scenario's buffer library (``""`` keeps the config's)."""
    return replace(spec, buffer_library=str(value))


#: Dimension kind -> (applier, value validator).
PARAM_APPLIERS: Dict[str, Callable] = {
    "total_sites": _apply_total_sites,
    "capacity": _apply_capacity,
    "length_limit": _apply_length_limit,
    "num_nets": _apply_num_nets,
    "macro_origin": _apply_macro_origin,
    "region_sites": _apply_region_sites,
    "buffer_library": _apply_buffer_library,
}

#: Dimensions whose values are plain integers (bisection-capable).
SCALAR_PARAMS = (
    "total_sites",
    "capacity",
    "length_limit",
    "num_nets",
    "region_sites",
)


@dataclass(frozen=True)
class Dimension:
    """One axis of a sweep: a parameter kind plus its candidate values.

    Attributes:
        param: one of :data:`PARAM_APPLIERS`.
        values: ordered candidate values. Integers for scalar params,
            ``(x, y)`` pairs for ``macro_origin``.
        index: which macro a ``macro_origin`` dimension moves.
        tiles: the tile set a ``region_sites`` dimension overrides.
    """

    param: str
    values: Tuple
    index: int = 0
    tiles: Tuple[Tile, ...] = ()

    def __post_init__(self) -> None:
        if self.param not in PARAM_APPLIERS:
            raise ConfigurationError(
                f"unknown sweep parameter {self.param!r}; expected one of "
                f"{sorted(PARAM_APPLIERS)}"
            )
        if not self.values:
            raise ConfigurationError(
                f"dimension {self.param!r} needs at least one value"
            )
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(
            self, "tiles", tuple(tuple(t) for t in self.tiles)
        )
        if self.param == "region_sites" and not self.tiles:
            raise ConfigurationError("region_sites dimension needs tiles")
        if self.param == "macro_origin":
            for v in self.values:
                try:
                    ok = len(tuple(v)) == 2
                except TypeError:
                    ok = False
                if not ok:
                    raise ConfigurationError(
                        "macro_origin values must be (x, y) pairs"
                    )
            object.__setattr__(
                self, "values", tuple(tuple(int(c) for c in v) for v in self.values)
            )
        elif self.param == "buffer_library":
            from repro.technology import LIBRARY_NAMES

            values = tuple(str(v) for v in self.values)
            for v in values:
                if v and v not in LIBRARY_NAMES:
                    raise ConfigurationError(
                        f"unknown buffer library {v!r}; expected one of "
                        f"{LIBRARY_NAMES} (or '' for the config default)"
                    )
            object.__setattr__(self, "values", values)
        elif self.param in SCALAR_PARAMS:
            object.__setattr__(
                self, "values", tuple(int(v) for v in self.values)
            )

    @property
    def label(self) -> str:
        if self.param == "macro_origin":
            return f"macro{self.index}"
        if self.param == "region_sites":
            x, y = self.tiles[0]
            return f"region_sites[{x},{y}+{len(self.tiles)}t]"
        return self.param

    def apply(self, spec: ScenarioSpec, value) -> ScenarioSpec:
        return PARAM_APPLIERS[self.param](spec, value, self)


@dataclass(frozen=True)
class SamplePoint:
    """One sampled assignment: dimension values plus the scenario it builds."""

    values: Tuple
    scenario: ScenarioSpec


@dataclass(frozen=True)
class ParameterSpace:
    """A base scenario and the dimensions to sweep over it."""

    base: ScenarioSpec
    dimensions: Tuple[Dimension, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise ConfigurationError("a parameter space needs >= 1 dimension")
        labels = [d.label for d in self.dimensions]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"dimension labels must be unique, got {labels}"
            )

    @property
    def size(self) -> int:
        n = 1
        for dim in self.dimensions:
            n *= len(dim.values)
        return n

    def scenario_for(self, values: Sequence) -> ScenarioSpec:
        """The scenario a value-per-dimension assignment builds."""
        if len(values) != len(self.dimensions):
            raise ConfigurationError(
                f"expected {len(self.dimensions)} values, got {len(values)}"
            )
        spec = self.base
        for dim, value in zip(self.dimensions, values):
            spec = dim.apply(spec, value)
        return spec

    def point(self, values: Sequence) -> SamplePoint:
        values = tuple(
            tuple(v) if isinstance(v, (list, tuple)) else v for v in values
        )
        return SamplePoint(values=values, scenario=self.scenario_for(values))

    def assignment(self, point: SamplePoint) -> Dict[str, object]:
        """Dimension label -> value, for human-facing reports."""
        return {
            dim.label: value
            for dim, value in zip(self.dimensions, point.values)
        }

    # -- samplers -------------------------------------------------------- #

    def grid(self) -> List[SamplePoint]:
        """Every combination, in deterministic row-major order."""
        return [
            self.point(values)
            for values in itertools.product(*(d.values for d in self.dimensions))
        ]

    def sample_random(self, count: int, seed: int = 0) -> List[SamplePoint]:
        """Latin-hypercube sample: ``count`` stratified, seeded draws.

        Each dimension's value list is hit near-uniformly (one draw per
        stratum, strata shuffled independently per dimension). Duplicate
        assignments are dropped, so the result may be slightly shorter
        than ``count`` when the space is small.
        """
        if count < 1:
            raise ConfigurationError("sample count must be >= 1")
        rng = make_rng(seed)
        columns = []
        for dim in self.dimensions:
            k = len(dim.values)
            strata = [int(i * k // count) for i in range(count)]
            order = rng.permutation(count)
            columns.append([dim.values[strata[i]] for i in order])
        seen = set()
        points = []
        for row in zip(*columns):
            if row in seen:
                continue
            seen.add(row)
            points.append(self.point(row))
        return points


# --------------------------------------------------------------------- #
# Adaptive bisection                                                    #
# --------------------------------------------------------------------- #


class AdaptiveBisection:
    """Binary refinement of the feasibility boundary along one dimension.

    The bisected dimension must be scalar (integer values); its min/max
    bracket a budget range assumed monotonic — more budget never makes a
    plan *less* feasible, which holds for ``total_sites``, ``capacity``,
    ``region_sites``, and ``length_limit``. For every combination of the
    remaining dimensions the search maintains an
    ``(infeasible_lo, feasible_hi)`` bracket and proposes midpoints until
    the bracket closes to adjacent integers.

    Drive it with the propose/observe loop::

        search = AdaptiveBisection(space, dim_label="total_sites")
        while True:
            batch = search.propose()
            if not batch:
                break
            for point in batch:
                search.observe(point.values, evaluate(point))
        boundaries = search.boundaries()
    """

    def __init__(self, space: ParameterSpace, dim_label: str):
        self.space = space
        labels = [d.label for d in space.dimensions]
        if dim_label not in labels:
            raise ConfigurationError(
                f"unknown bisection dimension {dim_label!r}; have {labels}"
            )
        self.axis = labels.index(dim_label)
        dim = space.dimensions[self.axis]
        if dim.param not in SCALAR_PARAMS:
            raise ConfigurationError(
                f"cannot bisect non-scalar dimension {dim.param!r}"
            )
        self.lo = min(dim.values)
        self.hi = max(dim.values)
        if self.lo == self.hi:
            raise ConfigurationError(
                "bisection needs a dimension with a value range"
            )
        others = [
            d.values for i, d in enumerate(space.dimensions) if i != self.axis
        ]
        #: combo (values of the other dimensions) -> bracket state.
        self.brackets: Dict[Tuple, Dict[str, Optional[int]]] = {
            combo: {"lo": None, "hi": None}
            for combo in itertools.product(*others)
        }
        self._observed: Dict[Tuple, bool] = {}

    def _values_for(self, combo: Tuple, axis_value: int) -> Tuple:
        values = list(combo)
        values.insert(self.axis, int(axis_value))
        return tuple(values)

    def _split(self, values: Tuple) -> Tuple[Tuple, int]:
        combo = tuple(v for i, v in enumerate(values) if i != self.axis)
        return combo, int(values[self.axis])

    def seed(self, observations) -> int:
        """Pre-load known verdicts before the propose/observe loop.

        ``observations`` yields ``(values, feasible)`` pairs (e.g. from a
        :class:`~repro.explore.store.ResultStore` of a previous sweep).
        Each one narrows its combination's bracket exactly like a live
        :meth:`observe` — in particular a stored feasible point becomes
        the bracket's ``hi``, so the search resumes from the known
        cheapest-feasible value outward instead of re-proposing the raw
        endpoints. Returns the number of observations applied.
        """
        applied = 0
        for values, feasible in observations:
            self.observe(values, feasible)
            applied += 1
        return applied

    def observe(self, values: Tuple, feasible: bool) -> None:
        """Record one evaluated point's feasibility verdict."""
        values = tuple(
            tuple(v) if isinstance(v, (list, tuple)) else v for v in values
        )
        combo, x = self._split(values)
        if combo not in self.brackets:
            raise ConfigurationError(f"unknown combination {combo!r}")
        self._observed[values] = feasible
        bracket = self.brackets[combo]
        if feasible:
            if bracket["hi"] is None or x < bracket["hi"]:
                bracket["hi"] = x
        else:
            if bracket["lo"] is None or x > bracket["lo"]:
                bracket["lo"] = x

    def propose(self) -> List[SamplePoint]:
        """The next batch of points to evaluate; empty when converged."""
        batch: List[SamplePoint] = []
        for combo, bracket in sorted(self.brackets.items()):
            for x in self._next_for(bracket):
                values = self._values_for(combo, x)
                if values not in self._observed:
                    batch.append(self.space.point(values))
        return batch

    def _next_for(self, bracket) -> List[int]:
        lo, hi = bracket["lo"], bracket["hi"]
        if lo is None and hi is None:
            return [self.lo, self.hi]  # seed both endpoints
        if hi is None:
            # Even the top of the range was infeasible so far.
            return [self.hi] if (lo is None or lo < self.hi) else []
        if lo is None:
            # Even the bottom was feasible so far.
            return [self.lo] if hi > self.lo else []
        if hi - lo > 1:
            return [(lo + hi) // 2]
        return []

    def boundaries(self) -> Dict[Tuple, Optional[int]]:
        """Per-combination cheapest feasible value (``None`` = infeasible).

        Exact once :meth:`propose` returns empty; a best-so-far upper
        bound before that.
        """
        return {
            combo: bracket["hi"]
            for combo, bracket in sorted(self.brackets.items())
        }


# --------------------------------------------------------------------- #
# Delta recognition                                                     #
# --------------------------------------------------------------------- #

#: ScenarioSpec fields a DeltaSpec can never change; any difference in
#: one of these forces a from-scratch plan.
_FIXED_FIELDS = (
    "grid",
    "num_nets",
    "capacity",
    "seed",
    "length_limit",
    "total_sites",
    "site_seed",
    "buffer_library",
)


def delta_between(
    base: ScenarioSpec, target: ScenarioSpec
) -> Optional[DeltaSpec]:
    """A delta turning ``base`` into exactly ``target``, if one exists.

    Returns ``None`` when the difference involves a field deltas cannot
    express (grid size, global budgets, seeds) or an override removal.
    The result is verified: ``apply_delta(base, delta) == target`` or it
    is not returned — so evaluating ``target`` by incremental replay of
    a ``base`` plan is provably the same scenario.
    """
    from repro.service.jobs import apply_delta

    if base == target:
        return None
    for name in _FIXED_FIELDS:
        if getattr(base, name) != getattr(target, name):
            return None
    ops: List[DeltaOp] = []
    if base.macros != target.macros:
        if len(base.macros) != len(target.macros):
            return None
        for i, (old, new) in enumerate(zip(base.macros, target.macros)):
            if (old.width, old.height) != (new.width, new.height):
                return None
            if (old.x, old.y) != (new.x, new.y):
                ops.append(move_macro(i, new.x, new.y))
    base_added = {name: (src, sinks) for name, src, sinks in base.added_nets}
    target_added = {name: (src, sinks) for name, src, sinks in target.added_nets}
    for name in base_added.keys() - target_added.keys():
        if name not in target.removed_nets:
            return None  # an added net vanished without a removal
    for name, (src, sinks) in sorted(target_added.items()):
        if base_added.get(name) != (src, sinks):
            ops.append(add_net(name, src, list(sinks)))
    for name in sorted(set(target.removed_nets) - set(base.removed_nets)):
        ops.append(remove_net(name))
    if set(base.removed_nets) - set(target.removed_nets):
        removed_back = set(base.removed_nets) - set(target.removed_nets)
        if not removed_back <= target_added.keys():
            return None  # a removal was undone without re-adding
    base_limits = dict(base.length_limits)
    target_limits = dict(target.length_limits)
    if base_limits.keys() - target_limits.keys():
        return None  # a per-net limit override cannot be unset by a delta
    for name, limit in sorted(target_limits.items()):
        if base_limits.get(name) != limit:
            ops.append(set_length_limit(name, limit))
    base_sites = dict(base.site_overrides)
    target_sites = dict(target.site_overrides)
    if base_sites.keys() - target_sites.keys():
        return None
    changed_tiles = [
        (x, y, count)
        for (x, y), count in sorted(target_sites.items())
        if base_sites.get((x, y)) != count
    ]
    if changed_tiles:
        ops.append(set_sites(changed_tiles))
    base_caps = {(u, v): c for u, v, c in base.capacity_overrides}
    target_caps = {(u, v): c for u, v, c in target.capacity_overrides}
    if base_caps.keys() - target_caps.keys():
        return None
    changed_edges = [
        (u[0], u[1], v[0], v[1], cap)
        for (u, v), cap in sorted(target_caps.items())
        if base_caps.get((u, v)) != cap
    ]
    if changed_edges:
        ops.append(set_capacity(changed_edges))
    if not ops:
        return None
    delta = DeltaSpec(tuple(ops))
    if apply_delta(base, delta) != target:
        return None
    return delta
