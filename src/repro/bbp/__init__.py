"""Buffer-block planning baseline (Cong/Kong/Pan's BBP/FR, reimplemented).

The Table V comparison needs the *methodology* the paper argues against:
buffers restricted to the free space between macro blocks. This package
implements a feasible-region buffer-block planner for two-pin nets:

1. every multipin net is star-decomposed into two-pin nets (as in [8]);
2. the number of buffers per net follows the same distance rule RABID
   uses, so the comparison isolates *where* buffers may go;
3. each buffer's ideal location is the even split point of the source-sink
   line; its feasible region is a box around the ideal point;
4. the buffer is placed at the free-space (outside every macro) point
   nearest the ideal location, searching the feasible region first and
   growing outward when the region is fully blocked — which is exactly how
   buffers end up *clustered into blocks* in the channels;
5. nets are routed through their buffers with L-shapes, with no congestion
   awareness (BBP/FR routes first, measures congestion later).
"""

from repro.bbp.feasible_region import FeasibleRegion, ideal_buffer_points, feasible_region_for
from repro.bbp.planner import BbpConfig, BbpPlanner, BbpResult, max_tile_area_pct
from repro.bbp.stations import (
    BufferStation,
    StationAssigner,
    StationAssignment,
    stations_from_bbp,
    stations_from_points,
)

__all__ = [
    "BufferStation",
    "StationAssigner",
    "StationAssignment",
    "stations_from_bbp",
    "stations_from_points",
    "FeasibleRegion",
    "ideal_buffer_points",
    "feasible_region_for",
    "BbpConfig",
    "BbpPlanner",
    "BbpResult",
    "max_tile_area_pct",
]
