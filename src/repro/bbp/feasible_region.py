"""Feasible regions for two-pin-net buffer insertion (after Cong et al.).

Cong, Kong and Pan derive, per buffer of a two-pin net, the largest region
in which the buffer can sit while the net still meets its delay target.
Their key empirical point (which the paper under reproduction leans on) is
that feasible regions are *wide*: a buffer may move a considerable distance
from its ideal split point at small delay cost. We model the region as a
box centered on the ideal point whose half-width scales with the slack
parameter ``alpha`` and the buffer spacing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect


@dataclass(frozen=True)
class FeasibleRegion:
    """The region in which one buffer of a net may be placed."""

    ideal: Point
    box: Rect

    def contains(self, p: Point) -> bool:
        return self.box.contains(p)


def ideal_buffer_points(source: Point, sink: Point, count: int) -> List[Point]:
    """Even split points along the source-sink Manhattan route.

    The route is taken as the straight (diagonal) parameterization — split
    points of an L-shaped route differ only within the same bounding box,
    and the feasible-region box absorbs the difference.
    """
    if count < 0:
        raise ConfigurationError("buffer count must be >= 0")
    out: List[Point] = []
    for i in range(1, count + 1):
        t = i / (count + 1)
        out.append(
            Point(
                source.x + t * (sink.x - source.x),
                source.y + t * (sink.y - source.y),
            )
        )
    return out


def feasible_region_for(
    ideal: Point,
    spacing_mm: float,
    die: Rect,
    alpha: float = 0.5,
) -> FeasibleRegion:
    """A feasible-region box of half-width ``alpha * spacing`` around
    ``ideal``, clipped to the die."""
    if spacing_mm <= 0:
        raise ConfigurationError("buffer spacing must be positive")
    if alpha < 0:
        raise ConfigurationError("alpha must be >= 0")
    half = alpha * spacing_mm
    box = Rect(
        max(die.x0, ideal.x - half),
        max(die.y0, ideal.y - half),
        min(die.x1, ideal.x + half),
        min(die.y1, ideal.y + half),
    )
    return FeasibleRegion(ideal=ideal, box=box)
