"""The BBP/FR baseline planner and its measurement helpers."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bbp.feasible_region import feasible_region_for, ideal_buffer_points
from repro.errors import ConfigurationError
from repro.floorplan import Floorplan
from repro.geometry import Point
from repro.netlist import Net, Netlist, decompose_to_two_pin
from repro.obs import NULL_TRACER
from repro.routing.embed import l_shaped_between_tiles
from repro.routing.tree import BufferSpec, RouteTree
from repro.technology import TECH_180NM, Technology
from repro.tilegraph.congestion import wire_congestion_stats
from repro.tilegraph.graph import Tile, TileGraph
from repro.timing.elmore import delay_summary


@dataclass
class BbpConfig:
    """BBP/FR parameters.

    Attributes:
        length_limit: the same distance rule RABID uses (tile units); one
            buffer every ``length_limit`` tiles of source-sink distance.
        alpha: feasible-region half-width as a fraction of buffer spacing.
        technology: for the delay model and buffer area (MTAP).
        sample_step_mm: grid pitch for free-space candidate sampling.
        postprocess: apply the equal-length congestion cleanup (the paper
            applies it to both BBP/FR and RABID in Table V, and notes it
            dominates BBP/FR's reported CPU time).
    """

    length_limit: int = 5
    alpha: float = 0.5
    technology: Technology = TECH_180NM
    sample_step_mm: float = 0.25
    postprocess: bool = True


@dataclass
class BbpResult:
    """BBP/FR output with the Table V statistics."""

    routes: Dict[str, RouteTree]
    buffer_points: List[Point]
    buffers_per_tile: np.ndarray
    num_buffers: int
    wirelength_mm: float
    wire_congestion_max: float
    wire_congestion_avg: float
    overflows: int
    mtap_pct: float
    max_delay_ps: float
    avg_delay_ps: float
    cpu_seconds: float
    unplaceable: int = 0


def max_tile_area_pct(
    buffers_per_tile: np.ndarray, graph: TileGraph, tech: Technology
) -> float:
    """MTAP: the worst tile's buffer-area share, in percent."""
    if buffers_per_tile.size == 0:
        return 0.0
    worst = float(buffers_per_tile.max())
    return 100.0 * worst * tech.buffer_area_mm2 / graph.tile_area_mm2


class BbpPlanner:
    """Feasible-region buffer-block planning over a floorplan."""

    def __init__(
        self,
        graph: TileGraph,
        floorplan: Floorplan,
        netlist: Netlist,
        config: "BbpConfig | None" = None,
    ) -> None:
        self.graph = graph
        self.floorplan = floorplan
        self.netlist = decompose_to_two_pin(netlist)
        self.config = config or BbpConfig()
        if self.config.length_limit < 1:
            raise ConfigurationError("length limit must be >= 1")

    # ------------------------------------------------------------------ #

    def buffers_needed(self, net: Net) -> int:
        """Distance-rule buffer count for a two-pin net."""
        tile_pitch = (self.graph.tile_w + self.graph.tile_h) / 2
        dist_tiles = net.source.location.manhattan_to(net.sinks[0].location) / tile_pitch
        return max(0, math.ceil(dist_tiles / self.config.length_limit) - 1)

    def _nearest_free_point(self, ideal: Point, spacing_mm: float) -> Optional[Point]:
        """Free-space point nearest ``ideal``: feasible region first, then
        expanding rings (this overflow into shared channels is what builds
        the buffer blocks)."""
        if self.floorplan.free_space(ideal):
            return ideal
        region = feasible_region_for(
            ideal, spacing_mm, self.floorplan.die, self.config.alpha
        )
        step = self.config.sample_step_mm
        best: Optional[Tuple[float, Point]] = None
        box = region.box
        nx = max(1, int(box.width / step))
        ny = max(1, int(box.height / step))
        for i in range(nx + 1):
            for j in range(ny + 1):
                p = Point(box.x0 + i * step, box.y0 + j * step)
                if not box.contains(p) or not self.floorplan.free_space(p):
                    continue
                d = ideal.manhattan_to(p)
                if best is None or d < best[0]:
                    best = (d, p)
        if best is not None:
            return best[1]
        # Region fully blocked: expand rings around the ideal point.
        die = self.floorplan.die
        max_radius = die.width + die.height
        radius = step
        while radius <= max_radius:
            samples = max(8, int(2 * math.pi * radius / step))
            for k in range(samples):
                angle = 2 * math.pi * k / samples
                p = Point(
                    min(max(ideal.x + radius * math.cos(angle), die.x0), die.x1),
                    min(max(ideal.y + radius * math.sin(angle), die.y0), die.y1),
                )
                if self.floorplan.free_space(p):
                    return p
            radius += step
        return None

    def _route_through(self, net: Net, buffer_points: List[Point]) -> RouteTree:
        """L-shaped legs source -> buffers -> sink on the tile grid."""
        stops = [net.source.location] + buffer_points + [net.sinks[0].location]
        tiles = [self.graph.tile_of(p) for p in stops]
        paths = [
            l_shaped_between_tiles(a, b) for a, b in zip(tiles, tiles[1:]) if a != b
        ]
        source_tile = tiles[0]
        sink_tile = tiles[-1]
        if not paths:
            tree = RouteTree.from_paths(source_tile, [], [sink_tile], net_name=net.name)
        else:
            tree = RouteTree.from_paths(
                source_tile, paths, [sink_tile], net_name=net.name
            )
        specs = [
            BufferSpec(t, None)
            for t in dict.fromkeys(tiles[1:-1])
            if t in tree.nodes and t not in (source_tile,)
        ]
        tree.apply_buffers(specs)
        return tree

    def run(self, tracer=None) -> BbpResult:
        """Plan buffers and routes for every (two-pin) net.

        Args:
            tracer: optional :class:`repro.obs.Tracer`; per-net
                ``buffered`` events, the ``buffer_sites_used`` counter,
                and spans around planning and post-processing.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        start = time.perf_counter()
        tile_pitch = (self.graph.tile_w + self.graph.tile_h) / 2
        spacing_mm = self.config.length_limit * tile_pitch
        routes: Dict[str, RouteTree] = {}
        all_points: List[Point] = []
        buffers_per_tile = np.zeros((self.graph.nx, self.graph.ny), dtype=np.int64)
        unplaceable = 0

        with tracer.span("bbp.plan", nets=len(self.netlist)):
            for net in self.netlist:
                count = self.buffers_needed(net)
                placed: List[Point] = []
                for ideal in ideal_buffer_points(
                    net.source.location, net.sinks[0].location, count
                ):
                    p = self._nearest_free_point(ideal, spacing_mm)
                    if p is None:
                        unplaceable += 1
                        continue
                    placed.append(p)
                    all_points.append(p)
                    buffers_per_tile[self.graph.tile_of(p)] += 1
                tree = self._route_through(net, placed)
                tree.add_usage(self.graph)
                routes[net.name] = tree
                if tracer.enabled:
                    tracer.count("buffer_sites_used", len(placed))
                    tracer.event(
                        "buffered",
                        net.name,
                        stage="bbp",
                        buffers=len(placed),
                        wanted=count,
                    )

        if self.config.postprocess:
            from repro.routing.monotone import reduce_congestion

            with tracer.span("bbp.postprocess"):
                reduce_congestion(self.graph, routes)

        wire = wire_congestion_stats(self.graph)
        if tracer.enabled:
            tracer.gauge("overflow_total", wire.overflow)
            tracer.gauge("bbp.unplaceable", unplaceable)
        max_delay, avg_delay, _ = delay_summary(
            routes, self.graph, self.config.technology
        )
        wirelength = sum(t.wirelength_mm(self.graph) for t in routes.values())
        return BbpResult(
            routes=routes,
            buffer_points=all_points,
            buffers_per_tile=buffers_per_tile,
            num_buffers=len(all_points),
            wirelength_mm=wirelength,
            wire_congestion_max=wire.maximum,
            wire_congestion_avg=wire.average,
            overflows=wire.overflow,
            mtap_pct=max_tile_area_pct(
                buffers_per_tile, self.graph, self.config.technology
            ),
            max_delay_ps=max_delay * 1e12,
            avg_delay_ps=avg_delay * 1e12,
            cpu_seconds=time.perf_counter() - start,
            unplaceable=unplaceable,
        )
