"""Global buffering against an existing buffer-block plan (Dragan et al.).

The related work the paper contrasts with includes Dragan/Kahng/Mandoiu/
Muddu's flow-based approach: *given* a buffer-block plan (capacitated
buffer stations), assign two-pin nets to chains of stations. This module
reimplements that problem's practical core:

* :func:`stations_from_points` / :func:`stations_from_bbp` — cluster
  concrete buffer locations into capacitated :class:`BufferStation`s
  (the "buffer blocks");
* :class:`StationAssigner` — assign each net the station chain that
  minimizes detour plus a congestion-style station cost
  ``(used + 1) / (capacity - used)`` (the same shape as Eq. (2)), so
  popular blocks fill gracefully;
* nets whose required chain cannot be completed (stations exhausted or
  too far apart for the distance rule) are reported as unassignable —
  exactly the failure mode the buffer-site methodology dissolves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry import Point, manhattan
from repro.netlist import Net
from repro.utils.union_find import UnionFind

INF = float("inf")


@dataclass
class BufferStation:
    """A capacitated buffer block."""

    location: Point
    capacity: int
    used: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("station capacity must be >= 1")

    @property
    def full(self) -> bool:
        return self.used >= self.capacity

    def cost(self) -> float:
        """Eq. (2)-shaped congestion cost of taking one slot."""
        if self.full:
            return INF
        return (self.used + 1) / (self.capacity - self.used)


def stations_from_points(
    points: Sequence[Point],
    merge_radius_mm: float,
    capacity_per_point: int = 1,
) -> List[BufferStation]:
    """Cluster buffer locations into stations by single-linkage.

    Points within ``merge_radius_mm`` (Manhattan, transitively) form one
    station at their centroid with the summed capacity.
    """
    if merge_radius_mm < 0:
        raise ConfigurationError("merge radius must be >= 0")
    uf = UnionFind()
    pts = list(points)
    for i in range(len(pts)):
        uf.find(i)
        for j in range(i + 1, len(pts)):
            if manhattan(pts[i], pts[j]) <= merge_radius_mm:
                uf.union(i, j)
    clusters: Dict[int, List[int]] = {}
    for i in range(len(pts)):
        clusters.setdefault(uf.find(i), []).append(i)
    stations = []
    for members in clusters.values():
        cx = sum(pts[i].x for i in members) / len(members)
        cy = sum(pts[i].y for i in members) / len(members)
        stations.append(
            BufferStation(
                location=Point(cx, cy),
                capacity=capacity_per_point * len(members),
            )
        )
    stations.sort(key=lambda s: s.location)
    return stations


def stations_from_bbp(bbp_result, merge_radius_mm: float = 1.0, headroom: int = 1):
    """Stations from a :class:`repro.bbp.planner.BbpResult`'s buffer points."""
    return stations_from_points(
        bbp_result.buffer_points, merge_radius_mm, capacity_per_point=headroom
    )


@dataclass
class StationAssignment:
    """One net's outcome: the chosen chain, or None if unassignable."""

    net_name: str
    chain: Optional[List[BufferStation]]
    detour_mm: float = 0.0

    @property
    def assigned(self) -> bool:
        return self.chain is not None


class StationAssigner:
    """Greedy chain assignment of two-pin nets onto buffer stations."""

    def __init__(
        self,
        stations: Sequence[BufferStation],
        spacing_mm: float,
        detour_weight: float = 1.0,
        slack: float = 1.0,
    ) -> None:
        """
        Args:
            stations: the buffer-block plan.
            spacing_mm: nominal gate-to-gate distance (the distance rule
                in mm; e.g. ``L * tile_pitch``); sets the buffer count.
            detour_weight: relative weight of detour (mm) versus station
                congestion cost when scoring candidates.
            slack: hop-length tolerance — hops up to ``slack * spacing``
                are accepted (Dragan et al. bound hops in an [L, U]
                window; slack > 1 models the U side).
        """
        if spacing_mm <= 0:
            raise ConfigurationError("spacing must be positive")
        if slack < 1.0:
            raise ConfigurationError("slack must be >= 1")
        self.stations = list(stations)
        self.spacing_mm = spacing_mm
        self.detour_weight = detour_weight
        self.slack = slack

    def buffers_needed(self, net: Net) -> int:
        dist = net.source.location.manhattan_to(net.sinks[0].location)
        return max(0, math.ceil(dist / self.spacing_mm) - 1)

    def _best_station(
        self, prev: Point, sink: Point, remaining: int
    ) -> Optional[BufferStation]:
        """The cheapest feasible next station.

        Feasible: within ``spacing`` of ``prev`` and close enough that the
        remaining chain can still reach the sink
        (``dist(st, sink) <= (remaining) * spacing``).
        """
        reach = self.spacing_mm * self.slack
        best: Optional[Tuple[float, BufferStation]] = None
        for st in self.stations:
            if st.full:
                continue
            hop = manhattan(prev, st.location)
            if hop > reach:
                continue
            if manhattan(st.location, sink) > remaining * reach:
                continue
            direct = manhattan(prev, sink)
            detour = hop + manhattan(st.location, sink) - direct
            score = self.detour_weight * detour + st.cost()
            if best is None or score < best[0]:
                best = (score, st)
        return best[1] if best else None

    def assign_net(self, net: Net) -> StationAssignment:
        """Choose a station chain for one two-pin net (books capacity)."""
        if net.num_sinks != 1:
            raise ConfigurationError("station assignment expects two-pin nets")
        count = self.buffers_needed(net)
        if count == 0:
            return StationAssignment(net.name, chain=[])
        source = net.source.location
        sink = net.sinks[0].location
        chain: List[BufferStation] = []
        prev = source
        for i in range(count):
            remaining = count - i  # stations left to place, incl. this one
            st = self._best_station(prev, sink, remaining)
            if st is None:
                # Roll back reservations; the net is unassignable.
                for taken in chain:
                    taken.used -= 1
                return StationAssignment(net.name, chain=None)
            st.used += 1
            chain.append(st)
            prev = st.location
        direct = manhattan(source, sink)
        routed = (
            manhattan(source, chain[0].location)
            + sum(
                manhattan(a.location, b.location)
                for a, b in zip(chain, chain[1:])
            )
            + manhattan(chain[-1].location, sink)
        )
        return StationAssignment(net.name, chain=chain, detour_mm=routed - direct)

    def assign_all(self, nets: Sequence[Net]) -> List[StationAssignment]:
        """Assign every net, longest (most constrained) first."""
        order = sorted(
            nets,
            key=lambda n: (
                -n.source.location.manhattan_to(n.sinks[0].location),
                n.name,
            ),
        )
        return [self.assign_net(net) for net in order]
