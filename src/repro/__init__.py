"""repro — reproduction of "A Practical Methodology for Early Buffer and
Wire Resource Allocation" (Alpert, Hu, Sapatnekar, Villarrubia; DAC 2001 /
IEEE TCAD 2003).

The library implements the buffer-site methodology end to end: tile-graph
modeling of buffer sites and wire capacities, the four-stage RABID planner
(Steiner construction, congestion-driven rip-up/reroute, length-based
buffer-assignment DP, two-path post-processing), an Elmore timing model, a
sequence-pair floorplanner, synthetic versions of the paper's benchmarks,
and a buffer-block-planning (BBP/FR) baseline for the Table V comparison.

Quickstart::

    from repro import load_benchmark, RabidPlanner, RabidConfig

    bench = load_benchmark("apte")
    planner = RabidPlanner(
        bench.graph, bench.netlist, RabidConfig(length_limit=bench.spec.length_limit)
    )
    result = planner.run()
    print(result.final_metrics)
"""

from repro.errors import (
    ConfigurationError,
    FloorplanError,
    InfeasibleError,
    NetlistError,
    ObservabilityError,
    ReproError,
    RoutingError,
)
from repro.obs import NULL_TRACER, NullTracer, Tracer, read_trace, render_summary
from repro.geometry import Point, Rect
from repro.technology import TECH_180NM, BufferKind, BufferLibrary, Technology
from repro.netlist import Net, Netlist, Pin, decompose_to_two_pin
from repro.floorplan import Block, Floorplan, anneal_floorplan
from repro.tilegraph import (
    CapacityModel,
    CongestionStats,
    SiteDistribution,
    TileGraph,
    buffer_density_stats,
    wire_congestion_stats,
)
from repro.routing import RouteTree, prim_dijkstra_tree, remove_overlaps, embed_tree
from repro.timing import (
    DelayReport,
    net_delay,
    delay_summary,
    timing_driven_buffering,
    rebuffer_net_timing_driven,
)
from repro.tilegraph import PlacedBuffer, SitePlacement, legalize_buffers
from repro.analysis import design_report
from repro.core import (
    RabidConfig,
    RabidPlanner,
    RabidResult,
    StageMetrics,
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
)
from repro.benchmarks import BenchmarkInstance, BenchmarkSpec, BENCHMARK_SPECS, load_benchmark
from repro.bbp import BbpConfig, BbpPlanner, BbpResult

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetlistError",
    "FloorplanError",
    "RoutingError",
    "InfeasibleError",
    "Point",
    "Rect",
    "Technology",
    "TECH_180NM",
    "BufferKind",
    "BufferLibrary",
    "Pin",
    "Net",
    "Netlist",
    "decompose_to_two_pin",
    "Block",
    "Floorplan",
    "anneal_floorplan",
    "TileGraph",
    "CapacityModel",
    "SiteDistribution",
    "CongestionStats",
    "wire_congestion_stats",
    "buffer_density_stats",
    "RouteTree",
    "prim_dijkstra_tree",
    "remove_overlaps",
    "embed_tree",
    "DelayReport",
    "net_delay",
    "delay_summary",
    "timing_driven_buffering",
    "rebuffer_net_timing_driven",
    "PlacedBuffer",
    "SitePlacement",
    "legalize_buffers",
    "design_report",
    "RabidConfig",
    "RabidPlanner",
    "RabidResult",
    "StageMetrics",
    "insert_buffers_single_sink",
    "insert_buffers_multi_sink",
    "BenchmarkSpec",
    "BenchmarkInstance",
    "BENCHMARK_SPECS",
    "load_benchmark",
    "BbpConfig",
    "BbpPlanner",
    "BbpResult",
    "ObservabilityError",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_trace",
    "render_summary",
    "__version__",
]
