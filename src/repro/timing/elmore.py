"""Elmore delay of buffered route trees.

Electrical model:

* every route-tree edge (adjacent tiles) is a wire segment of length equal
  to the tile pitch in that direction, with resistance ``R_w = r * len`` and
  capacitance ``C_w = c * len`` (pi model: half the capacitance at each
  end);
* the net's driver has output resistance ``tech.driver_res``; every sink
  pin loads its tile with ``tech.sink_cap`` (one per sink pin tile — the
  tile abstraction merges co-located sinks);
* a *trunk* buffer at node ``v`` is inserted at the top of ``v``: it
  presents its input capacitance upstream and drives everything at and
  below ``v`` (its tile's sink load, decoupling buffers, child branches);
* a *decoupling* buffer at ``v`` toward child ``w`` presents its input
  capacitance to the gate driving ``v``'s contents and drives the branch
  ``v -> w`` downward;
* buffers add their intrinsic delay.

Buffer electrical parameters come from the node's *kind* annotation: the
default kind (``""``) is the technology's planning repeater
(``tech.buffer_res`` / ``tech.buffer_cap`` / ``tech.buffer_delay``), exactly
as before the buffer library existed; a named kind resolves through the
optional ``library`` argument to its per-kind RC and intrinsic delay.

Within one stage (gate to the next gates/sinks), delay follows Elmore:
``R_gate * C_stage_total + sum over path edges of R_e * (C_e / 2 + C_below)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.routing.tree import RouteNode, RouteTree
from repro.technology import BufferLibrary, Technology
from repro.tilegraph.graph import Tile, TileGraph


@dataclass(frozen=True)
class DelayReport:
    """Per-net delay summary (seconds)."""

    max_delay: float
    avg_delay: float
    sink_delays: Dict[Tile, float]


def _edge_rc(graph: TileGraph, tech: Technology, u: Tile, v: Tile) -> Tuple[float, float]:
    length = graph.edge_length_mm(u, v)
    return tech.wire_resistance(length), tech.wire_capacitance(length)


def _kind_rcd(
    tech: Technology, library: Optional[BufferLibrary], kind: str
) -> Tuple[float, float, float]:
    """(output_res, input_cap, intrinsic_delay) of a buffer kind.

    The default kind always reads the technology's repeater fields
    directly, so default-kind trees produce bit-identical delays with or
    without a library in hand.
    """
    if kind and library is not None:
        k = library.get(kind)
        return k.output_res, k.input_cap, k.intrinsic_delay
    return tech.buffer_res, tech.buffer_cap, tech.buffer_delay


def _load_into(
    tree: RouteTree,
    graph: TileGraph,
    tech: Technology,
    library: Optional[BufferLibrary],
) -> Dict[Tile, float]:
    """Capacitance seen looking into each node from its parent edge.

    A trunk buffer hides everything below the node behind its input cap.
    """
    load: Dict[Tile, float] = {}
    for node in tree.postorder():
        if node.trunk_buffer:
            load[node.tile] = _kind_rcd(tech, library, node.trunk_kind)[1]
            continue
        total = tech.sink_cap if node.is_sink else 0.0
        for child in node.children:
            if child.tile in node.decoupled_children:
                kind = node.decoupled_kinds.get(child.tile, "")
                total += _kind_rcd(tech, library, kind)[1]
            else:
                _, c_wire = _edge_rc(graph, tech, node.tile, child.tile)
                total += c_wire + load[child.tile]
        load[node.tile] = total
    return load


def _contents_load(
    node: RouteNode,
    load: Dict[Tile, float],
    graph: TileGraph,
    tech: Technology,
    library: Optional[BufferLibrary],
) -> float:
    """Capacitance of a node's *contents*: its sink load, decoupling-buffer
    inputs, and non-decoupled child branches (excluding any trunk buffer)."""
    total = tech.sink_cap if node.is_sink else 0.0
    for child in node.children:
        if child.tile in node.decoupled_children:
            kind = node.decoupled_kinds.get(child.tile, "")
            total += _kind_rcd(tech, library, kind)[1]
        else:
            _, c_wire = _edge_rc(graph, tech, node.tile, child.tile)
            total += c_wire + load[child.tile]
    return total


def elmore_sink_delays(
    tree: RouteTree,
    graph: TileGraph,
    tech: Technology,
    library: Optional[BufferLibrary] = None,
) -> Dict[Tile, float]:
    """Elmore arrival time at every sink tile of ``tree``.

    Works for unbuffered trees (one stage driven by the driver) and for any
    trunk/decoupling buffer annotation produced by Stages 3/4. ``library``
    resolves named buffer kinds; without one every annotation is treated as
    the planning repeater (the pre-library behavior).
    """
    load = _load_into(tree, graph, tech, library)
    sink_delays: Dict[Tile, float] = {}

    # A stage: (gate resistance, arrival at gate input, intrinsic, start
    # node, scope child or None). Scope None = the start node's contents;
    # scope child = only the branch toward that child.
    StageKey = Tuple[float, float, RouteNode, Optional[RouteNode]]
    stages: List[StageKey] = []

    def stage_total_cap(start: RouteNode, scope: Optional[RouteNode]) -> float:
        if scope is None:
            return _contents_load(start, load, graph, tech, library)
        _, c_wire = _edge_rc(graph, tech, start.tile, scope.tile)
        return c_wire + load[scope.tile]

    root = tree.root
    if root.trunk_buffer:
        # Driver sees only the trunk buffer's input; buffer then drives the
        # root's contents.
        res, cap, intrinsic = _kind_rcd(tech, library, root.trunk_kind)
        arrival_at_buffer = tech.driver_res * cap
        stages.append((res, arrival_at_buffer + intrinsic, root, None))
    else:
        stages.append((tech.driver_res, 0.0, root, None))

    while stages:
        gate_res, start_time, start, scope = stages.pop()
        total_cap = stage_total_cap(start, scope)
        out_time = start_time + gate_res * total_cap

        # In-stage DFS carrying the accumulated Elmore delay.
        # Each stack entry: (node, arrival at the TOP of node).
        stack: List[Tuple[RouteNode, float]] = []

        def enter_contents(node: RouteNode, at_time: float) -> None:
            """Spawn work for a node's contents at the given arrival."""
            if node.is_sink:
                prev = sink_delays.get(node.tile)
                sink_delays[node.tile] = max(prev, at_time) if prev is not None else at_time
            for child in node.children:
                if child.tile in node.decoupled_children:
                    kind = node.decoupled_kinds.get(child.tile, "")
                    res, _, intrinsic = _kind_rcd(tech, library, kind)
                    stages.append((res, at_time + intrinsic, node, child))
                else:
                    r_wire, c_wire = _edge_rc(graph, tech, node.tile, child.tile)
                    arrival = at_time + r_wire * (c_wire / 2 + load[child.tile])
                    stack.append((child, arrival))

        if scope is None:
            enter_contents(start, out_time)
        else:
            r_wire, c_wire = _edge_rc(graph, tech, start.tile, scope.tile)
            arrival = out_time + r_wire * (c_wire / 2 + load[scope.tile])
            stack.append((scope, arrival))

        while stack:
            node, at_time = stack.pop()
            if node.trunk_buffer:
                res, _, intrinsic = _kind_rcd(tech, library, node.trunk_kind)
                stages.append((res, at_time + intrinsic, node, None))
                continue
            enter_contents(node, at_time)

    # A sink co-located with the source and never traversed (single-tile
    # net): driver drives just its tile contents.
    if root.is_sink and root.tile not in sink_delays:
        sink_delays[root.tile] = tech.driver_res * load[root.tile]
    return sink_delays


def net_delay(
    tree: RouteTree,
    graph: TileGraph,
    tech: Technology,
    library: Optional[BufferLibrary] = None,
) -> DelayReport:
    """Max/avg Elmore delay over the net's sink tiles."""
    delays = elmore_sink_delays(tree, graph, tech, library)
    if not delays:
        return DelayReport(0.0, 0.0, {})
    values = list(delays.values())
    return DelayReport(max(values), sum(values) / len(values), delays)


def delay_summary(
    trees: Dict[str, RouteTree],
    graph: TileGraph,
    tech: Technology,
    library: Optional[BufferLibrary] = None,
) -> Tuple[float, float, Dict[str, DelayReport]]:
    """(max over sinks, average over sinks, per-net reports) for a design.

    The average weights every *sink* equally (the paper reports delay "to
    each sink"), not every net.
    """
    reports: Dict[str, DelayReport] = {}
    total = 0.0
    count = 0
    worst = 0.0
    for name, tree in trees.items():
        report = net_delay(tree, graph, tech, library)
        reports[name] = report
        for value in report.sink_delays.values():
            total += value
            count += 1
        if report.sink_delays:
            worst = max(worst, report.max_delay)
    return worst, (total / count if count else 0.0), reports
