"""Timing substrate: Elmore delay of (buffered) route trees.

The paper reports maximum and average source-to-sink delays per stage
(Tables II-V). Delays are computed with the Elmore model: each tile-graph
edge is a distributed RC segment of the tile pitch; buffers split the tree
into stages, each driven by the upstream gate's output resistance.
"""

from repro.timing.elmore import (
    DelayReport,
    elmore_sink_delays,
    net_delay,
    delay_summary,
)
from repro.timing.van_ginneken import (
    rebuffer_net_timing_driven,
    timing_driven_buffering,
)
from repro.timing.slew import (
    length_limit_for_slew,
    max_driven_length_mm,
    stage_slew,
)

__all__ = [
    "stage_slew",
    "max_driven_length_mm",
    "length_limit_for_slew",
    "DelayReport",
    "elmore_sink_delays",
    "net_delay",
    "delay_summary",
    "timing_driven_buffering",
    "rebuffer_net_timing_driven",
]
