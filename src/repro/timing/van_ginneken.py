"""Timing-driven buffer insertion (van Ginneken's algorithm).

The paper's Stage 3 is deliberately *length-based* because floorplan-stage
timing constraints are meaningless; it notes that "later in the design
flow, when more accurate timing information is available, one can rip up
the buffering solution for a given net and recompute a potentially better
solution via a timing-driven buffering algorithm". This module provides
that algorithm: classic van Ginneken dynamic programming over a routed
tree, minimizing the maximum Elmore source-to-sink delay, with candidate
buffer locations restricted to tiles that still have free buffer sites.

Candidates are (downstream capacitance, required-delay) pairs pruned to
the Pareto frontier; buffers may decouple a single branch at its top tile
or drive the whole subtree (the same two shapes the length-based DP uses),
so results drop directly into :class:`RouteTree` annotations.

The buffer branch of the DP loops over a list of buffer kinds. With no
library (the default) that list is the single planning repeater and the
algorithm is the classic b=1 van Ginneken; handing it a
:class:`repro.technology.BufferLibrary` turns the same kernel into the
Li–Shi multi-type DP — every buffer point branches over all b kinds and
the shared Pareto prune drops cross-kind dominated candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.candidates import INF, oversubscribes, pareto_prune
from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec, RouteNode, RouteTree
from repro.technology import BufferKind, BufferLibrary, Technology
from repro.tilegraph.graph import Tile, TileGraph


@dataclass
class _Candidate:
    """One Pareto point: downstream cap + worst downstream delay.

    ``trace`` encodes how it was built:
      ("sink",)                       — a sink leaf
      ("wire", child_cand)            — advanced up an edge, no buffer
      ("buf", node_tile, child_tile_or_None, below_cand, kind_name)
                                      — buffer of a given kind inserted
      ("merge", cand_a, cand_b)       — two branches joined
    """

    cap: float
    delay: float
    trace: tuple
    buffers: int = 0


def _planning_kinds(
    tech: Technology, library: Optional[BufferLibrary]
) -> Tuple[List[BufferKind], str]:
    """The kind list the DP branches over, plus the default kind's name.

    Without a library this is the planning repeater alone under the empty
    name — candidate generation order and floats are then exactly the
    classic b=1 recurrence's, so results stay byte-identical.
    """
    if library is None:
        return (
            [
                BufferKind(
                    name="",
                    inverting=False,
                    output_res=tech.buffer_res,
                    input_cap=tech.buffer_cap,
                    intrinsic_delay=tech.buffer_delay,
                )
            ],
            "",
        )
    return list(library.kinds), library.default_name


def timing_driven_buffering(
    tree: RouteTree,
    graph: TileGraph,
    tech: Technology,
    site_available: "Callable[[Tile], bool] | None" = None,
    max_candidates: int = 64,
    tracer=None,
    library: Optional[BufferLibrary] = None,
) -> Tuple[float, List[BufferSpec]]:
    """Minimize the net's worst Elmore sink delay by buffer insertion.

    Args:
        tree: the routed net (existing annotations are ignored).
        graph: tile graph (for edge lengths and, by default, free sites).
        tech: electrical parameters; buffers are the planning repeater.
        site_available: predicate for usable buffer tiles; defaults to
            ``graph.free_sites(tile) > 0``.
        max_candidates: cap on the per-node Pareto list (keeps the lowest-
            delay candidates when exceeded).
        tracer: optional :class:`repro.obs.Tracer`; every Pareto candidate
            generated accumulates into the ``dp_candidates`` counter.
        library: optional buffer library; when given, every buffer point
            branches over all its kinds (Li–Shi multi-type DP) and the
            returned specs carry kind names (library default as ``""``).

    Returns:
        ``(delay_seconds, buffer_specs)`` for the best solution found;
        ``buffer_specs`` is empty when the unbuffered net is already best
        or no sites are available.
    """
    if site_available is None:
        site_available = lambda t: graph.free_sites(t) > 0

    kinds, default_kind = _planning_kinds(tech, library)
    lists: Dict[Tile, List[_Candidate]] = {}
    generated = 0
    pruned = 0

    def _count_pruned(n: int) -> None:
        nonlocal pruned
        pruned += n

    def _prune(cands: List[_Candidate]) -> List[_Candidate]:
        kept = pareto_prune(cands, count=_count_pruned)
        if len(kept) > max_candidates:
            _count_pruned(len(kept) - max_candidates)
            del kept[max_candidates:]
        return kept

    for node in tree.postorder():
        merged: Optional[List[_Candidate]] = None
        for child in node.children:
            r_wire = tech.wire_resistance(graph.edge_length_mm(node.tile, child.tile))
            c_wire = tech.wire_capacitance(graph.edge_length_mm(node.tile, child.tile))
            branch: List[_Candidate] = []
            for cand in lists[child.tile]:
                cap = cand.cap + c_wire
                delay = cand.delay + r_wire * (c_wire / 2 + cand.cap)
                advanced = _Candidate(cap, delay, ("wire", cand), cand.buffers)
                branch.append(advanced)
                if site_available(node.tile):
                    for kind in kinds:
                        branch.append(
                            _Candidate(
                                kind.input_cap,
                                delay
                                + kind.intrinsic_delay
                                + kind.output_res * cap,
                                ("buf", node.tile, child.tile, advanced, kind.name),
                                cand.buffers + 1,
                            )
                        )
            generated += len(branch)
            branch = _prune(branch)
            if merged is None:
                merged = branch
            else:
                combined = [
                    _Candidate(
                        a.cap + b.cap,
                        max(a.delay, b.delay),
                        ("merge", a, b),
                        a.buffers + b.buffers,
                    )
                    for a in merged
                    for b in branch
                ]
                generated += len(combined)
                merged = _prune(combined)

        if merged is None:  # leaf (sink)
            merged = [_Candidate(tech.sink_cap, 0.0, ("sink",))]
        elif node.is_sink:
            merged = _prune(
                [
                    _Candidate(c.cap + tech.sink_cap, c.delay, c.trace, c.buffers)
                    for c in merged
                ]
            )
        # Trunk buffer at this node (drives the merged contents).
        if node.children and site_available(node.tile):
            buffered = [
                _Candidate(
                    kind.input_cap,
                    c.delay + kind.intrinsic_delay + kind.output_res * c.cap,
                    ("buf", node.tile, None, c, kind.name),
                    c.buffers + 1,
                )
                for c in merged
                for kind in kinds
            ]
            generated += len(buffered)
            merged = _prune(merged + buffered)
        lists[node.tile] = merged

    if tracer is not None and tracer.enabled:
        if generated:
            tracer.count("dp_candidates", generated)
        if pruned:
            tracer.count("dp.candidates_pruned", pruned)

    root_cands = lists[tree.root.tile]
    if not root_cands:
        raise ConfigurationError("no candidates at the root (empty tree?)")
    best = min(root_cands, key=lambda c: c.delay + tech.driver_res * c.cap)
    specs: List[BufferSpec] = []
    _trace_buffers(best, specs, default_kind)
    return best.delay + tech.driver_res * best.cap, specs


def _trace_buffers(
    cand: _Candidate, out: List[BufferSpec], default_kind: str = ""
) -> None:
    stack = [cand]
    while stack:
        c = stack.pop()
        kind = c.trace[0]
        if kind == "sink":
            continue
        if kind == "wire":
            stack.append(c.trace[1])
        elif kind == "buf":
            _, tile, child, below, kind_name = c.trace
            out.append(
                BufferSpec(
                    tile, child, "" if kind_name == default_kind else kind_name
                )
            )
            stack.append(below)
        else:  # merge
            stack.append(c.trace[1])
            stack.append(c.trace[2])


def rebuffer_net_timing_driven(
    tree: RouteTree,
    graph: TileGraph,
    tech: Technology,
    max_candidates: int = 64,
    tracer=None,
    library: Optional[BufferLibrary] = None,
) -> float:
    """Rip up a net's buffers and reinsert them delay-optimally.

    Releases the net's current sites (one :class:`SiteLedger` transaction
    covers the whole trial, so an exception anywhere restores ``b(v)``),
    runs :func:`timing_driven_buffering` against the freed availability,
    applies the result to the tree, and re-books the sites. The DP prices
    site *availability* per tile but can stack several buffers into one
    tile; when that oversubscribes ``B(v)`` (or when the new solution is
    slower), the transaction is rolled back and the previous buffering is
    kept.

    Returns the achieved worst sink delay (seconds).
    """
    from repro.timing.elmore import net_delay  # local: avoid import cycle

    old_specs = tree.buffer_specs()
    old_delay = net_delay(tree, graph, tech, library=library).max_delay
    ledger = graph.ledger()
    with ledger.transaction() as txn:
        for node in tree.nodes.values():
            for kind, count in node.kind_counts().items():
                graph.use_site(node.tile, -count, kind)
        tree.clear_buffers()
        delay, specs = timing_driven_buffering(
            tree,
            graph,
            tech,
            max_candidates=max_candidates,
            tracer=tracer,
            library=library,
        )
        improved = not (oversubscribes(graph, specs) or delay > old_delay)
        if improved:
            tree.apply_buffers(specs)
            for spec in specs:
                graph.use_site(spec.tile, 1, spec.kind)
        else:
            txn.rollback()  # re-books the released sites
            specs, delay = old_specs, old_delay
            tree.apply_buffers(specs)
    if tracer is not None and tracer.enabled:
        tracer.event(
            "buffered",
            tree.net_name,
            stage="rebuffer",
            buffers=len(specs),
            improved=improved,
        )
        tracer.check_site_invariants(graph, f"rebuffer net {tree.net_name}")
    return delay
