"""Slew estimation and the slew-derived length rule.

The paper's length rule is a stand-in for a slew constraint: "repeaters
are required at intervals of at most 4500 um" in 0.25 um technology so
that "the slew rate is sufficiently sharp at the input to all gates".
This module closes that loop:

* :func:`stage_slew` estimates the slew at a gate input from the Elmore
  delay of its driving stage (the PERI/Bakoglu approximation
  ``slew ~ ln(9) * elmore`` for a 10-90% ramp);
* :func:`max_driven_length_mm` inverts the estimate: the longest wire a
  repeater may drive before the sink slew exceeds a limit;
* :func:`length_limit_for_slew` converts that into the tile-count ``L``
  that :class:`RabidConfig` consumes — so an experiment can *derive* the
  paper's L values from an electrical constraint rather than assume them.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.technology import Technology

#: 10-90% ramp factor for a single-pole response.
LN9 = math.log(9.0)


def stage_elmore(tech: Technology, length_mm: float, load_cap: float) -> float:
    """Elmore delay of one repeater stage driving ``length_mm`` of wire
    terminated by ``load_cap``."""
    if length_mm < 0:
        raise ConfigurationError("wire length must be >= 0")
    r_wire = tech.wire_resistance(length_mm)
    c_wire = tech.wire_capacitance(length_mm)
    return (
        tech.buffer_res * (c_wire + load_cap)
        + r_wire * (c_wire / 2 + load_cap)
    )


def stage_slew(tech: Technology, length_mm: float, load_cap: "float | None" = None) -> float:
    """Approximate 10-90% slew (seconds) at the end of a repeater stage."""
    if load_cap is None:
        load_cap = tech.buffer_cap
    return LN9 * stage_elmore(tech, length_mm, load_cap)


def max_driven_length_mm(
    tech: Technology,
    max_slew: float,
    load_cap: "float | None" = None,
) -> float:
    """Longest wire one repeater may drive while meeting ``max_slew``.

    Solves ``stage_slew(length) = max_slew`` for length; the stage Elmore
    is quadratic in length, so the positive root is closed-form.
    """
    if max_slew <= 0:
        raise ConfigurationError("max_slew must be positive")
    if load_cap is None:
        load_cap = tech.buffer_cap
    # slew = LN9 * (a*len^2 + b*len + c)
    a = tech.wire_res_per_mm * tech.wire_cap_per_mm / 2
    b = (
        tech.buffer_res * tech.wire_cap_per_mm
        + tech.wire_res_per_mm * load_cap
    )
    c = tech.buffer_res * load_cap
    target = max_slew / LN9
    if target <= c:
        return 0.0
    disc = b * b + 4 * a * (target - c)
    return (-b + math.sqrt(disc)) / (2 * a)


def length_limit_for_slew(
    tech: Technology,
    tile_pitch_mm: float,
    max_slew: float,
) -> int:
    """The tile-count length rule ``L`` implied by a slew limit.

    Floors the slew-derived distance to whole tiles; at least 1 (a rule of
    zero tiles would make every net infeasible).
    """
    if tile_pitch_mm <= 0:
        raise ConfigurationError("tile pitch must be positive")
    distance = max_driven_length_mm(tech, max_slew)
    return max(1, int(distance / tile_pitch_mm))
