"""JSON serialization for netlists, tile graphs, and planning results.

The paper's flow hands results between tools (floorplanner -> planner ->
timing); this module provides the interchange layer: a versioned JSON
schema covering the benchmark instance (die, blocks, pins, sites,
capacities) and the planning result (per-net tile trees plus buffer
annotations), with exact round-tripping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError, UnknownBufferKindError
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph import CapacityModel, TileGraph

SCHEMA_VERSION = 1

#: Schema of the per-buffer entries inside a routes payload. Version 1
#: (implicit — legacy payloads carry no ``buffer_schema`` key) knows only
#: the singleton planning repeater; version 2 adds an optional ``kind``
#: field naming the library cell, omitted when it is the library default
#: so default-kind payloads stay byte-identical to version 1.
BUFFER_SCHEMA_VERSION = 2

#: Schema of the config / ledger / whole-plan payloads (added with the
#: planning service; independent of the instance schema above).
PLAN_SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Netlists                                                              #
# --------------------------------------------------------------------- #

def _pin_to_dict(pin: Pin) -> Dict[str, Any]:
    return {
        "name": pin.name,
        "x": pin.location.x,
        "y": pin.location.y,
        "owner": pin.owner,
    }


def _pin_from_dict(d: Dict[str, Any]) -> Pin:
    return Pin(name=d["name"], location=Point(d["x"], d["y"]), owner=d["owner"])


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    return {
        "version": SCHEMA_VERSION,
        "nets": [
            {
                "name": net.name,
                "source": _pin_to_dict(net.source),
                "sinks": [_pin_to_dict(s) for s in net.sinks],
            }
            for net in netlist
        ],
    }


def netlist_from_dict(d: Dict[str, Any]) -> Netlist:
    if d.get("version") != SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported netlist schema {d.get('version')!r}")
    out = Netlist()
    for nd in d["nets"]:
        out.add(
            Net(
                name=nd["name"],
                source=_pin_from_dict(nd["source"]),
                sinks=[_pin_from_dict(s) for s in nd["sinks"]],
            )
        )
    return out


# --------------------------------------------------------------------- #
# Routes                                                                #
# --------------------------------------------------------------------- #

def _buffer_to_dict(spec: BufferSpec) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "tile": list(spec.tile),
        "drives_child": list(spec.drives_child) if spec.drives_child else None,
    }
    if spec.kind:
        out["kind"] = spec.kind
    return out


def routes_to_dict(routes: Dict[str, RouteTree]) -> Dict[str, Any]:
    """Serialize per-net routes: parent edges, sinks, buffers.

    Buffer entries follow :data:`BUFFER_SCHEMA_VERSION`: a ``kind`` key is
    present only on buffers assigned a non-default library kind.
    """
    payload = {}
    for name in sorted(routes):
        tree = routes[name]
        payload[name] = {
            "source": list(tree.source),
            "edges": [
                [list(parent), list(child)] for parent, child in tree.edges()
            ],
            "sinks": [list(t) for t in tree.sink_tiles],
            "buffers": [
                _buffer_to_dict(spec) for spec in tree.buffer_specs()
            ],
        }
    return {
        "version": SCHEMA_VERSION,
        "buffer_schema": BUFFER_SCHEMA_VERSION,
        "routes": payload,
    }


def _buffer_from_dict(bd: Dict[str, Any], library) -> BufferSpec:
    kind = bd.get("kind", "")
    if kind and library is not None:
        try:
            library.get(kind)
        except ConfigurationError:
            known = sorted(k.name for k in library.kinds)
            raise UnknownBufferKindError(
                f"buffer payload names kind {kind!r}, not in the active "
                f"library (knows {known})"
            ) from None
    return BufferSpec(
        tuple(bd["tile"]),
        tuple(bd["drives_child"]) if bd["drives_child"] else None,
        kind,
    )


def routes_from_dict(d: Dict[str, Any], library=None) -> Dict[str, RouteTree]:
    """Inverse of :func:`routes_to_dict`.

    Legacy payloads (no ``buffer_schema`` key, buffers without ``kind``)
    load with every buffer as the library default (``""``). When
    ``library`` (a :class:`repro.technology.BufferLibrary`) is given,
    named kinds are validated against it and an unknown name raises
    :class:`repro.errors.UnknownBufferKindError`.
    """
    if d.get("version") != SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported routes schema {d.get('version')!r}")
    buffer_schema = d.get("buffer_schema", 1)
    if buffer_schema not in (1, BUFFER_SCHEMA_VERSION):
        raise ConfigurationError(
            f"unsupported buffer schema {buffer_schema!r}"
        )
    out: Dict[str, RouteTree] = {}
    for name, rd in d["routes"].items():
        source: Tuple[int, int] = tuple(rd["source"])  # type: ignore[assignment]
        parent = {tuple(child): tuple(par) for par, child in rd["edges"]}
        sinks = [tuple(t) for t in rd["sinks"]]
        tree = RouteTree.from_parent_map(source, parent, sinks, net_name=name)
        tree.apply_buffers(
            [_buffer_from_dict(bd, library) for bd in rd["buffers"]]
        )
        out[name] = tree
    return out


# --------------------------------------------------------------------- #
# Whole instances                                                       #
# --------------------------------------------------------------------- #

def instance_to_dict(
    die: Rect,
    floorplan: Floorplan,
    netlist: Netlist,
    graph: TileGraph,
) -> Dict[str, Any]:
    return {
        "version": SCHEMA_VERSION,
        "die": [die.x0, die.y0, die.x1, die.y1],
        "blocks": [
            {
                "name": b.name,
                "x": b.x,
                "y": b.y,
                "width": b.width,
                "height": b.height,
                "allows_buffer_sites": b.allows_buffer_sites,
            }
            for b in floorplan.blocks
        ],
        "netlist": netlist_to_dict(netlist),
        "grid": [graph.nx, graph.ny],
        "sites": graph.sites.tolist(),
        "h_capacity": graph.h_capacity.tolist(),
        "v_capacity": graph.v_capacity.tolist(),
    }


def _instance_from_dict(d: Dict[str, Any]):
    if d.get("version") != SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported instance schema {d.get('version')!r}")
    die = Rect(*d["die"])
    blocks = [
        Block(
            name=bd["name"],
            width=bd["width"],
            height=bd["height"],
            x=bd["x"],
            y=bd["y"],
            allows_buffer_sites=bd["allows_buffer_sites"],
        )
        for bd in d["blocks"]
    ]
    floorplan = Floorplan(die=die, blocks=blocks)
    netlist = netlist_from_dict(d["netlist"])
    nx, ny = d["grid"]
    graph = TileGraph(die, nx, ny, CapacityModel.uniform(0))
    import numpy as np

    graph.sites[:] = np.asarray(d["sites"], dtype=np.int64)
    graph._notify_all_sites_changed()
    graph.h_capacity[:] = np.asarray(d["h_capacity"], dtype=np.int64)
    graph.v_capacity[:] = np.asarray(d["v_capacity"], dtype=np.int64)
    return die, floorplan, netlist, graph


# --------------------------------------------------------------------- #
# Configs, ledger state, whole plans                                    #
# --------------------------------------------------------------------- #

def config_to_dict(config) -> Dict[str, Any]:
    """Serialize a full :class:`repro.core.RabidConfig`.

    Every field round-trips — per-net length limits, ``stage3_solver`` and
    the per-net ``stage3_solvers`` overrides, ``workers``,
    ``stage3_workers``, and the expanded technology parameters.
    """
    return {"version": PLAN_SCHEMA_VERSION, "config": config.as_dict()}


def config_from_dict(d: Dict[str, Any]):
    if d.get("version") != PLAN_SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported config schema {d.get('version')!r}")
    from repro.core.rabid import RabidConfig

    return RabidConfig.from_dict(d["config"])


def ledger_state_to_dict(ledger) -> Dict[str, Any]:
    """Serialize a :class:`SiteLedger`'s used/capacity vectors."""
    state = ledger.snapshot_state()
    return {"version": PLAN_SCHEMA_VERSION, **state}


def ledger_state_from_dict(d: Dict[str, Any], ledger) -> None:
    """Install a serialized ledger state onto ``ledger``'s graph."""
    if d.get("version") != PLAN_SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported ledger schema {d.get('version')!r}")
    state = {"used": d["used"], "capacity": d["capacity"]}
    if "kinds" in d:
        state["kinds"] = d["kinds"]
    ledger.restore_state(state)


def plan_to_dict(graph: TileGraph, routes: Dict[str, RouteTree], config) -> Dict[str, Any]:
    """Serialize a complete plan: graph state + routes + config.

    The payload captures everything needed to resume planning warm —
    ``B(v)``/``b(v)`` through the ledger, wire capacity/usage, every
    net's tree with buffer annotations, and the full planner config.
    """
    return {
        "version": PLAN_SCHEMA_VERSION,
        "die": [graph.die.x0, graph.die.y0, graph.die.x1, graph.die.y1],
        "grid": [graph.nx, graph.ny],
        "ledger": ledger_state_to_dict(graph.ledger()),
        "edge_capacity": graph.edge_capacity.tolist(),
        "edge_usage": graph.edge_usage.tolist(),
        "routes": routes_to_dict(routes),
        "config": config_to_dict(config),
    }


def plan_from_dict(d: Dict[str, Any]):
    """Inverse of :func:`plan_to_dict`.

    Returns ``(graph, routes, config)`` with all usage state installed.
    """
    if d.get("version") != PLAN_SCHEMA_VERSION:
        raise ConfigurationError(f"unsupported plan schema {d.get('version')!r}")
    import numpy as np

    die = Rect(*d["die"])
    nx, ny = d["grid"]
    graph = TileGraph(die, nx, ny, CapacityModel.uniform(0))
    graph.edge_capacity[:] = np.asarray(d["edge_capacity"], dtype=np.int64)
    graph.edge_usage[:] = np.asarray(d["edge_usage"], dtype=np.int64)
    graph._notify_all_usage_changed()
    ledger_state_from_dict(d["ledger"], graph.ledger())
    config = config_from_dict(d["config"])
    from repro.technology import resolve_library

    library = resolve_library(config.buffer_library, config.technology)
    routes = routes_from_dict(d["routes"], library=library)
    return graph, routes, config


def save_plan_json(path: "str | Path", graph, routes, config) -> None:
    """Write a complete plan (graph state + routes + config) to JSON."""
    Path(path).write_text(json.dumps(plan_to_dict(graph, routes, config)))


def load_plan_json(path: "str | Path"):
    """Read a plan written by :func:`save_plan_json`."""
    return plan_from_dict(json.loads(Path(path).read_text()))


def save_instance_json(
    path: "str | Path",
    die: Rect,
    floorplan: Floorplan,
    netlist: Netlist,
    graph: TileGraph,
) -> None:
    """Write a complete planning instance to a JSON file."""
    Path(path).write_text(
        json.dumps(instance_to_dict(die, floorplan, netlist, graph))
    )


def load_instance_json(path: "str | Path"):
    """Read an instance written by :func:`save_instance_json`.

    Returns ``(die, floorplan, netlist, graph)``.
    """
    return _instance_from_dict(json.loads(Path(path).read_text()))
