"""Serialization of planning inputs and results (JSON)."""

from repro.io.serialize import (
    PLAN_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    instance_to_dict,
    ledger_state_from_dict,
    ledger_state_to_dict,
    load_instance_json,
    load_plan_json,
    netlist_from_dict,
    netlist_to_dict,
    plan_from_dict,
    plan_to_dict,
    routes_from_dict,
    routes_to_dict,
    save_instance_json,
    save_plan_json,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "netlist_to_dict",
    "netlist_from_dict",
    "routes_to_dict",
    "routes_from_dict",
    "instance_to_dict",
    "save_instance_json",
    "load_instance_json",
    "config_to_dict",
    "config_from_dict",
    "ledger_state_to_dict",
    "ledger_state_from_dict",
    "plan_to_dict",
    "plan_from_dict",
    "save_plan_json",
    "load_plan_json",
]
