"""Serialization of planning inputs and results (JSON)."""

from repro.io.serialize import (
    instance_to_dict,
    load_instance_json,
    netlist_from_dict,
    netlist_to_dict,
    routes_from_dict,
    routes_to_dict,
    save_instance_json,
)

__all__ = [
    "netlist_to_dict",
    "netlist_from_dict",
    "routes_to_dict",
    "routes_from_dict",
    "instance_to_dict",
    "save_instance_json",
    "load_instance_json",
]
