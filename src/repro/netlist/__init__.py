"""Netlist data model: pins, nets, and whole-design netlists."""

from repro.netlist.net import Pin, Net
from repro.netlist.netlist import Netlist, decompose_to_two_pin

__all__ = ["Pin", "Net", "Netlist", "decompose_to_two_pin"]
