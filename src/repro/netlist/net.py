"""Pins and nets.

A :class:`Net` is a driver pin plus one or more sink pins. Pins carry a
geometric location and a reference to their owner (a block name or ``"PAD"``)
so floorplan moves can relocate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import NetlistError
from repro.geometry import Point, Rect, bounding_box


@dataclass(frozen=True)
class Pin:
    """A net terminal.

    Attributes:
        name: unique name within its net (e.g. ``"blk3.p7"``).
        location: placement of the pin in chip coordinates (mm).
        owner: name of the block the pin belongs to, or ``"PAD"`` for an
            I/O pad on the die boundary.
    """

    name: str
    location: Point
    owner: str = "PAD"


@dataclass
class Net:
    """A signal net: one driver (source) and ``>= 1`` sinks.

    Nets are mutable only in their bookkeeping (nothing here); topology is
    fixed at construction. Routing and buffering results live outside the
    netlist, keyed by net name.
    """

    name: str
    source: Pin
    sinks: List[Pin] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sinks:
            raise NetlistError(f"net {self.name!r} has no sinks")
        names = [self.source.name] + [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise NetlistError(f"net {self.name!r} has duplicate pin names")

    @property
    def pins(self) -> List[Pin]:
        """All pins, source first."""
        return [self.source] + list(self.sinks)

    @property
    def degree(self) -> int:
        """Number of pins."""
        return 1 + len(self.sinks)

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)

    def bbox(self) -> Rect:
        """Bounding box of all pins."""
        return bounding_box(p.location for p in self.pins)

    def half_perimeter_wirelength(self) -> float:
        """HPWL lower bound on the net's routed wirelength (mm)."""
        box = self.bbox()
        return box.width + box.height

    def sink_locations(self) -> List[Point]:
        return [s.location for s in self.sinks]

    def as_two_pin(self) -> List[Tuple[Pin, Pin]]:
        """Star decomposition: one (source, sink) pair per sink.

        Used for the BBP/FR comparison (Table V), which, following Cong et
        al., decomposes multipin nets into two-pin nets.
        """
        return [(self.source, sink) for sink in self.sinks]
