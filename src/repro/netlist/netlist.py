"""Whole-design netlists."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.errors import NetlistError
from repro.netlist.net import Net, Pin


@dataclass
class Netlist:
    """An ordered collection of uniquely named nets."""

    nets: List[Net] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name: Dict[str, Net] = {}
        for net in self.nets:
            if net.name in self._by_name:
                raise NetlistError(f"duplicate net name {net.name!r}")
            self._by_name[net.name] = net

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self.nets)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Net:
        if name not in self._by_name:
            raise NetlistError(f"no net named {name!r}")
        return self._by_name[name]

    def add(self, net: Net) -> None:
        """Append a net; names must remain unique."""
        if net.name in self._by_name:
            raise NetlistError(f"duplicate net name {net.name!r}")
        self.nets.append(net)
        self._by_name[net.name] = net

    @property
    def total_sinks(self) -> int:
        return sum(n.num_sinks for n in self.nets)

    @property
    def total_pins(self) -> int:
        return sum(n.degree for n in self.nets)

    def total_hpwl(self) -> float:
        """Sum of per-net half-perimeter wirelengths (mm)."""
        return sum(n.half_perimeter_wirelength() for n in self.nets)


def decompose_to_two_pin(netlist: Netlist) -> Netlist:
    """Star-decompose every multipin net into two-pin nets.

    Net ``n`` with sinks ``s1..sk`` becomes nets ``n#0 .. n#(k-1)``, each
    driven by a copy of ``n``'s source. Two-pin nets pass through with
    their names unchanged. Matches the protocol of the paper's Table V
    comparison against BBP/FR.
    """
    out = Netlist()
    for net in netlist:
        if net.num_sinks == 1:
            out.add(net)
            continue
        for i, sink in enumerate(net.sinks):
            src = Pin(f"{net.source.name}#{i}", net.source.location, net.source.owner)
            out.add(Net(name=f"{net.name}#{i}", source=src, sinks=[sink]))
    return out
