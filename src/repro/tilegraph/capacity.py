"""Wire-capacity models for tile-graph edges.

The paper does not report its ``W(e)`` values. We support two models:

* ``uniform``: the same capacity on every edge — what the experiment
  configurations use, calibrated per benchmark so that the Stage-1 routing
  overloads the worst edges by the ~2-3x factor the paper reports.
* ``from_pitch``: capacity derived from the tile dimension, the routing
  pitch, and a utilization factor — the physically grounded alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.technology import Technology


@dataclass(frozen=True)
class CapacityModel:
    """Produces per-edge wire capacities.

    Exactly one of ``uniform_capacity`` or (``technology``, ``utilization``)
    drives the result; the named constructors enforce this.
    """

    uniform_capacity: "int | None" = None
    technology: "Technology | None" = None
    utilization: float = 0.25

    @classmethod
    def uniform(cls, capacity: int) -> "CapacityModel":
        """Same capacity on every tile-boundary edge."""
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        return cls(uniform_capacity=capacity)

    @classmethod
    def from_pitch(cls, technology: Technology, utilization: float = 0.25) -> "CapacityModel":
        """Capacity = tile-side / pitch * utilization (for global wiring)."""
        if not 0 < utilization <= 1:
            raise ConfigurationError("utilization must be in (0, 1]")
        return cls(technology=technology, utilization=utilization)

    def horizontal_capacity(self, tile_height_mm: float) -> int:
        """Capacity of an edge crossed by horizontal wires (a vertical
        tile boundary of the given height)."""
        return self._capacity(tile_height_mm)

    def vertical_capacity(self, tile_width_mm: float) -> int:
        """Capacity of an edge crossed by vertical wires."""
        return self._capacity(tile_width_mm)

    def _capacity(self, boundary_mm: float) -> int:
        if self.uniform_capacity is not None:
            return self.uniform_capacity
        if self.technology is None:
            raise ConfigurationError("CapacityModel has neither uniform nor pitch basis")
        tracks = boundary_mm / self.technology.wire_pitch_mm
        return max(1, int(tracks * self.utilization))
