"""Tile-graph abstraction (paper Section II).

A tiling ``G(V, E)`` of the die: ``V`` is a grid of tiles, each carrying a
buffer-site count ``B(v)`` and a used count ``b(v)``; edges between
neighboring tiles carry a wire capacity ``W(e)`` and a usage ``w(e)``.
"""

from repro.tilegraph.graph import Tile, TileGraph
from repro.tilegraph.capacity import CapacityModel
from repro.tilegraph.sites import (
    SiteDistribution,
    blocked_region_tiles,
    distribute_sites_randomly,
)
from repro.tilegraph.congestion import CongestionStats, wire_congestion_stats, buffer_density_stats
from repro.tilegraph.legalize import PlacedBuffer, SitePlacement, legalize_buffers
from repro.tilegraph.hierarchy import (
    CHANNELS,
    SiteDemand,
    block_budgets,
    distribute_sites_by_budget,
    unconstrained_site_demand,
)

__all__ = [
    "CHANNELS",
    "SiteDemand",
    "block_budgets",
    "distribute_sites_by_budget",
    "unconstrained_site_demand",
    "PlacedBuffer",
    "SitePlacement",
    "legalize_buffers",
    "Tile",
    "TileGraph",
    "CapacityModel",
    "SiteDistribution",
    "blocked_region_tiles",
    "distribute_sites_randomly",
    "CongestionStats",
    "wire_congestion_stats",
    "buffer_density_stats",
]
