"""Hierarchical buffer-site budgeting (paper Section I-B).

For hierarchical designs the paper proposes: assume unlimited sites, run
the allocator, count the buffers landing inside each macro block, and use
those counts (with headroom) as the block's real site budget. This module
is the library form of that recipe:

* :func:`unconstrained_site_demand` — run RABID against a saturated site
  supply and census the per-block buffer usage;
* :func:`block_budgets` — turn the census into per-block budgets with a
  headroom factor;
* :func:`distribute_sites_by_budget` — realize the budgets on a tile
  graph: each block's budget scatters over its own tiles, a channel
  budget over free-space tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan import Floorplan
from repro.netlist import Netlist
from repro.tilegraph.graph import Tile, TileGraph
from repro.utils.rng import make_rng

#: Census key for buffers landing outside every block.
CHANNELS = "<channels>"


@dataclass(frozen=True)
class SiteDemand:
    """Per-block buffer demand from an unconstrained allocation run."""

    per_block: Dict[str, int]
    total: int

    def demand_for(self, block_name: str) -> int:
        return self.per_block.get(block_name, 0)


def unconstrained_site_demand(
    graph: TileGraph,
    floorplan: Floorplan,
    netlist: Netlist,
    length_limit: int,
    sites_per_tile: int = 50,
    stage4_iterations: int = 1,
) -> SiteDemand:
    """Census buffer demand with a saturated site supply.

    Overwrites ``graph``'s site distribution with ``sites_per_tile``
    everywhere, runs the planner, and counts used sites per covering
    block. The graph is left with the unconstrained run's usage (callers
    typically work on a scratch instance).
    """
    from repro.core import RabidConfig, RabidPlanner  # local: avoid cycle

    graph.used_sites[:] = 0
    for tile in graph.tiles():
        graph.set_sites(tile, sites_per_tile)
    config = RabidConfig(
        length_limit=length_limit,
        stage4_iterations=stage4_iterations,
        window_margin=10,
    )
    RabidPlanner(graph, netlist, config).run()

    census: Dict[str, int] = {}
    for tile in graph.tiles():
        used = graph.used_site_count(tile)
        if not used:
            continue
        block = floorplan.block_at(graph.tile_center(tile))
        key = block.name if block is not None else CHANNELS
        census[key] = census.get(key, 0) + used
    return SiteDemand(per_block=census, total=sum(census.values()))


def block_budgets(
    demand: SiteDemand,
    headroom: float = 2.0,
    minimum: int = 0,
) -> Dict[str, int]:
    """Per-block site budgets: demand scaled by ``headroom``.

    Blocks that attracted no buffers get ``minimum`` sites (a designer may
    still want ECO spares there).
    """
    if headroom < 1.0:
        raise ConfigurationError("headroom must be >= 1")
    return {
        name: max(minimum, int(round(count * headroom)))
        for name, count in demand.per_block.items()
    }


def distribute_sites_by_budget(
    graph: TileGraph,
    floorplan: Floorplan,
    budgets: Dict[str, int],
    seed: "int | np.random.Generator | None" = 0,
) -> None:
    """Scatter per-block budgets over each block's own tiles.

    A tile belongs to the block covering its center; the ``CHANNELS``
    budget scatters over uncovered tiles. Blocks flagged
    ``allows_buffer_sites=False`` raise if budgeted.
    """
    rng = make_rng(seed)
    tiles_of: Dict[str, List[Tile]] = {CHANNELS: []}
    for tile in graph.tiles():
        block = floorplan.block_at(graph.tile_center(tile))
        key = block.name if block is not None else CHANNELS
        tiles_of.setdefault(key, []).append(tile)

    graph.sites[:] = 0
    try:
        for name, budget in sorted(budgets.items()):
            if budget <= 0:
                continue
            if name != CHANNELS:
                block = floorplan.get(name)
                if not block.allows_buffer_sites:
                    raise ConfigurationError(
                        f"block {name!r} does not allow buffer sites"
                    )
            tiles = tiles_of.get(name, [])
            if not tiles:
                raise ConfigurationError(f"no tiles belong to {name!r}")
            counts = rng.multinomial(budget, [1.0 / len(tiles)] * len(tiles))
            for tile, count in zip(tiles, counts):
                graph.sites[tile] += int(count)
    finally:
        graph._notify_all_sites_changed()
