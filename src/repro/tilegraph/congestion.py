"""Congestion statistics over a tile graph (the Table II/III/IV/V columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tilegraph.graph import TileGraph


@dataclass(frozen=True)
class CongestionStats:
    """Aggregate congestion figures.

    ``maximum``/``average`` are ratios (usage / capacity); ``overflow`` is
    the summed integer excess ``max(0, w(e) - W(e))`` over all edges (for
    wires) or tiles (for buffers).
    """

    maximum: float
    average: float
    overflow: int

    def satisfies_capacity(self) -> bool:
        return self.overflow == 0


def _ratio_stats(usage: np.ndarray, capacity: np.ndarray) -> CongestionStats:
    if usage.size == 0:
        return CongestionStats(0.0, 0.0, 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(
            capacity > 0,
            usage / np.maximum(capacity, 1),
            np.where(usage > 0, np.inf, 0.0),
        )
    overflow = int(np.maximum(usage - capacity, 0).sum())
    return CongestionStats(float(ratio.max()), float(ratio.mean()), overflow)


def wire_congestion_stats(graph: TileGraph) -> CongestionStats:
    """Max/avg of ``w(e)/W(e)`` and total wiring overflow."""
    usage = np.concatenate([graph.h_usage.ravel(), graph.v_usage.ravel()])
    capacity = np.concatenate([graph.h_capacity.ravel(), graph.v_capacity.ravel()])
    return _ratio_stats(usage, capacity)


def buffer_density_stats(graph: TileGraph, include_empty: bool = False) -> CongestionStats:
    """Max/avg of ``b(v)/B(v)`` and total buffer-site overflow.

    Tiles with ``B(v) = 0`` and no used sites are excluded by default: the
    paper's "buffer density" columns average over tiles that can hold
    buffers (otherwise the blocked region would dilute the average).
    """
    usage = graph.used_sites.ravel()
    capacity = graph.sites.ravel()
    if not include_empty:
        mask = (capacity > 0) | (usage > 0)
        if not mask.any():
            return CongestionStats(0.0, 0.0, 0)
        usage = usage[mask]
        capacity = capacity[mask]
    return _ratio_stats(usage, capacity)
