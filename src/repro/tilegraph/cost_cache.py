"""Incremental Eq. (1) congestion-cost cache over a tile graph's edges.

Stage 2 evaluates the paper's Eq. (1)

    Cost(e) = (w(e) + 1) / (W(e) - w(e))   when w(e)/W(e) < 1
              infinity                     otherwise

once per heap relaxation — millions of times per pass. Recomputing it from
the usage arrays on every lookup is what made the object-graph router
slow. This cache materializes the *strict* cost (infinite at saturation)
and the *soft* cost (saturation mapped to a large finite overflow penalty)
for every edge as plain Python lists, and recomputes only the edges whose
usage changed since the last refresh (a dirty set fed by
:meth:`TileGraph.add_wire`), so a net's rip-up/commit invalidates a few
dozen entries rather than the whole grid.

Lists, not NumPy arrays, are the lookup store: the maze kernel reads one
scalar per relaxation, and CPython list indexing is several times faster
than NumPy scalar access. Refreshes still *compute* vectorized — the dirty
indices are gathered, evaluated in one NumPy expression (bit-identical to
the scalar formulas, both are IEEE-754 double ops on exactly represented
integers), and scattered back.

Thread-safety contract: refresh and mutation must happen on the
coordinating thread; concurrent *readers* of the returned lists are safe
as long as no usage changes underneath them (the parallel Stage-2 batch
protocol guarantees this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Set

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tilegraph.graph import TileGraph

#: Soft-mode penalty charged per unit of overflow on a saturated edge.
#: (Canonical home of the constant; re-exported by repro.routing.maze.)
OVERFLOW_PENALTY = 1_000.0


class CongestionCostCache:
    """Per-edge strict/soft Eq. (1) costs with dirty-set invalidation."""

    __slots__ = (
        "_graph",
        "_strict",
        "_soft",
        "_dirty",
        "_all_dirty",
        "refreshes",
        "edges_recomputed",
        "invalidations",
    )

    def __init__(self, graph: "TileGraph") -> None:
        self._graph = graph
        n = graph.num_edges
        self._strict: List[float] = [0.0] * n
        self._soft: List[float] = [0.0] * n
        self._dirty: Set[int] = set()
        self._all_dirty = True
        #: Telemetry counters (read by the obs layer / tests).
        self.refreshes = 0
        self.edges_recomputed = 0
        self.invalidations = 0
        graph.register_cost_cache(self)

    # -- invalidation --------------------------------------------------- #

    def mark_dirty(self, eid: int) -> None:
        """Record that edge ``eid``'s usage changed."""
        self.invalidations += 1
        if not self._all_dirty:
            self._dirty.add(eid)

    def mark_all_dirty(self) -> None:
        """Invalidate every edge (bulk usage reset/restore)."""
        self.invalidations += 1
        self._all_dirty = True
        self._dirty.clear()

    @property
    def dirty_count(self) -> int:
        """Edges pending recompute (the whole grid counts when all-dirty)."""
        return self._graph.num_edges if self._all_dirty else len(self._dirty)

    # -- refresh -------------------------------------------------------- #

    def _compute(self, usage: np.ndarray, capacity: np.ndarray):
        """Vectorized strict and soft Eq. (1) over the given edge slices."""
        in_capacity = (capacity > 0) & (usage < capacity)
        strict = np.full(usage.shape, np.inf)
        np.divide(
            usage + 1.0, capacity - usage, out=strict, where=in_capacity
        )
        soft = np.where(
            capacity <= 0,
            OVERFLOW_PENALTY * (usage + 1.0),
            np.where(
                usage >= capacity,
                OVERFLOW_PENALTY * (usage - capacity + 1.0),
                strict,
            ),
        )
        return strict, soft

    def refresh(self) -> int:
        """Recompute pending edges; returns how many were recomputed."""
        graph = self._graph
        if self._all_dirty:
            strict, soft = self._compute(graph.edge_usage, graph.edge_capacity)
            self._strict[:] = strict.tolist()
            self._soft[:] = soft.tolist()
            recomputed = graph.num_edges
            self._all_dirty = False
            self._dirty.clear()
        elif self._dirty:
            idx = np.fromiter(self._dirty, dtype=np.int64, count=len(self._dirty))
            strict, soft = self._compute(
                graph.edge_usage[idx], graph.edge_capacity[idx]
            )
            strict_list = self._strict
            soft_list = self._soft
            for i, s, f in zip(idx.tolist(), strict.tolist(), soft.tolist()):
                strict_list[i] = s
                soft_list[i] = f
            recomputed = len(self._dirty)
            self._dirty.clear()
        else:
            return 0
        self.refreshes += 1
        self.edges_recomputed += recomputed
        return recomputed

    # -- lookup --------------------------------------------------------- #

    def strict_costs(self) -> List[float]:
        """The strict Eq. (1) cost list, refreshed if stale.

        The returned list is live — do not mutate it; re-call after any
        usage change (a stale reference is only coherent until the next
        :meth:`refresh`).
        """
        if self._all_dirty or self._dirty:
            self.refresh()
        return self._strict

    def soft_costs(self) -> List[float]:
        """The soft-penalty cost list, refreshed if stale."""
        if self._all_dirty or self._dirty:
            self.refresh()
        return self._soft

    def strict_cost(self, u, v) -> float:
        """Scalar convenience lookup (tests/diagnostics)."""
        return self.strict_costs()[self._graph.edge_id(u, v)]

    def soft_cost(self, u, v) -> float:
        return self.soft_costs()[self._graph.edge_id(u, v)]
