"""Buffer-site legalization: tile-level assignments -> concrete sites.

The tile graph deliberately abstracts individual buffer sites to per-tile
counts (paper Fig. 2); "after a buffer is assigned to a particular tile,
an actual buffer site can be allocated as a postprocessing step". This
module performs that step: it materializes concrete site coordinates for
every tile and maps each net's buffer annotations onto distinct physical
sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class PlacedBuffer:
    """One legalized buffer: which net, where, and what it drives."""

    net_name: str
    tile: Tile
    location: Point
    drives_child: "Tile | None"


class SitePlacement:
    """Concrete coordinates for every buffer site in a tile graph.

    Sites are scattered uniformly inside their tile (matching the paper's
    "sprinkled" sites); the scatter is seeded so legalization is
    reproducible.
    """

    def __init__(self, graph: TileGraph, seed: int = 0):
        rng = make_rng(seed)
        self.graph = graph
        self._points: Dict[Tile, List[Point]] = {}
        for tile in graph.tiles():
            count = graph.site_count(tile)
            if count == 0:
                continue
            rect = graph.tile_rect(tile)
            xs = rng.uniform(rect.x0, rect.x1, size=count)
            ys = rng.uniform(rect.y0, rect.y1, size=count)
            self._points[tile] = [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def sites_in(self, tile: Tile) -> List[Point]:
        """All site coordinates in a tile (empty when it has none)."""
        return list(self._points.get(tile, ()))

    @property
    def total_sites(self) -> int:
        return sum(len(v) for v in self._points.values())


def legalize_buffers(
    routes: Dict[str, RouteTree],
    placement: SitePlacement,
) -> List[PlacedBuffer]:
    """Assign every buffer annotation a distinct physical site.

    Buffers are processed tile by tile in deterministic order; within a
    tile, sites are handed out nearest-to-tile-center first (any unused
    site is equally legal — the paper's point 1 in Section II).

    Returns:
        One :class:`PlacedBuffer` per buffer annotation.

    Raises:
        ConfigurationError: when some tile holds more buffers than sites
            (the planner's `b(v) <= B(v)` invariant was violated upstream).
    """
    graph = placement.graph
    demand: Dict[Tile, List[Tuple[str, "Tile | None"]]] = {}
    for name in sorted(routes):
        for spec in routes[name].buffer_specs():
            demand.setdefault(spec.tile, []).append((name, spec.drives_child))

    out: List[PlacedBuffer] = []
    for tile in sorted(demand):
        wants = demand[tile]
        sites = placement.sites_in(tile)
        if len(wants) > len(sites):
            raise ConfigurationError(
                f"tile {tile} has {len(wants)} buffers but only "
                f"{len(sites)} sites"
            )
        center = graph.tile_center(tile)
        sites.sort(key=lambda p: (p.manhattan_to(center), p))
        for (net_name, child), site in zip(wants, sites):
            out.append(
                PlacedBuffer(
                    net_name=net_name,
                    tile=tile,
                    location=site,
                    drives_child=child,
                )
            )
    return out
