"""Buffer-site distributions (paper Fig. 2 and Section IV setup).

The experiments distribute a fixed total number of sites randomly over the
tiles, excluding a blocked region (a random 9x9 tile block standing in for
a cache-like macro that can host no buffer sites) and, optionally, tiles
covered by blocks flagged ``allows_buffer_sites=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan import Floorplan
from repro.tilegraph.graph import Tile, TileGraph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SiteDistribution:
    """A reproducible site-distribution recipe.

    Attributes:
        total_sites: number of buffer sites to scatter.
        blocked_size: side (in tiles) of the square blocked region; 0
            disables it. The paper uses 9.
        seed: RNG seed for both the blocked-region placement and the
            scattering.
    """

    total_sites: int
    blocked_size: int = 9
    seed: int = 0

    def apply(self, graph: TileGraph) -> FrozenSet[Tile]:
        """Fill ``graph.sites`` in place; returns the blocked tiles."""
        rng = make_rng(self.seed)
        blocked = blocked_region_tiles(graph, self.blocked_size, rng)
        distribute_sites_randomly(graph, self.total_sites, rng, blocked)
        return blocked


def blocked_region_tiles(
    graph: TileGraph,
    size: int,
    rng: "int | np.random.Generator | None" = None,
) -> FrozenSet[Tile]:
    """A random ``size`` x ``size`` block of tiles to receive zero sites.

    The block is clipped to the grid when the grid is smaller than ``size``
    in either dimension (matching small-grid Table IV runs).
    """
    if size <= 0:
        return frozenset()
    rng = make_rng(rng)
    span_x = min(size, graph.nx)
    span_y = min(size, graph.ny)
    x0 = int(rng.integers(0, graph.nx - span_x + 1))
    y0 = int(rng.integers(0, graph.ny - span_y + 1))
    return frozenset(
        (x, y) for x in range(x0, x0 + span_x) for y in range(y0, y0 + span_y)
    )


def distribute_sites_randomly(
    graph: TileGraph,
    total_sites: int,
    rng: "int | np.random.Generator | None" = None,
    blocked: "FrozenSet[Tile] | Set[Tile] | None" = None,
    floorplan: "Floorplan | None" = None,
) -> None:
    """Scatter ``total_sites`` buffer sites uniformly over eligible tiles.

    Eligible tiles are those not in ``blocked`` and, when a floorplan is
    given, not covered by a block with ``allows_buffer_sites=False``.

    Raises:
        ConfigurationError: when no tile is eligible but sites > 0.
    """
    if total_sites < 0:
        raise ConfigurationError("total_sites must be >= 0")
    rng = make_rng(rng)
    blocked = blocked or frozenset()
    eligible: List[Tile] = []
    for tile in graph.tiles():
        if tile in blocked:
            continue
        if floorplan is not None:
            block = floorplan.block_at(graph.tile_center(tile))
            if block is not None and not block.allows_buffer_sites:
                continue
        eligible.append(tile)
    graph.sites[:] = 0
    try:
        if total_sites == 0:
            return
        if not eligible:
            raise ConfigurationError("no eligible tiles for buffer sites")
        # Multinomial scatter: identical in distribution to dropping sites
        # one by one into uniformly random eligible tiles, but O(#tiles).
        counts = rng.multinomial(
            total_sites, [1.0 / len(eligible)] * len(eligible)
        )
        for tile, count in zip(eligible, counts):
            graph.sites[tile] = int(count)
    finally:
        graph._notify_all_sites_changed()
