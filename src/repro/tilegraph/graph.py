"""The tile graph: grid, buffer sites, wire capacities and usages.

Storage is *flat*: tiles are numbered ``0 .. nx*ny - 1`` (column-major,
``index = x * ny + y``) and every tile-boundary edge has a flat id into
1-D usage/capacity arrays (horizontal edges first, then vertical). The
classic object API — ``(x, y)`` tile tuples, ``h_usage``/``v_usage`` 2-D
arrays — is preserved as *views* of the flat arrays, so existing call
sites keep working while the routing kernel indexes integers.

A :class:`FlatTileGraph` (built lazily, cached) packages the CSR-style
adjacency as plain Python lists for the maze router's inner loop, where
list indexing beats NumPy scalar access by a wide margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.tilegraph.capacity import CapacityModel

#: A tile is addressed by integer grid coordinates ``(x, y)`` with the
#: origin tile (0, 0) at the lower-left corner of the die.
Tile = Tuple[int, int]


@dataclass
class FlatTileGraph:
    """Index-addressed adjacency of a :class:`TileGraph`, as Python lists.

    ``indptr``/``neighbors``/``edge_ids`` form a CSR over tile indices in
    the same deterministic E/W/N/S neighbor order as
    :meth:`TileGraph.neighbors`; ``tile_x``/``tile_y`` decode an index
    back to grid coordinates without divisions in the hot loop.
    """

    nx: int
    ny: int
    num_tiles: int
    num_edges: int
    indptr: List[int] = field(repr=False)
    neighbors: List[int] = field(repr=False)
    edge_ids: List[int] = field(repr=False)
    tile_x: List[int] = field(repr=False)
    tile_y: List[int] = field(repr=False)
    #: adj[i] = ((neighbor_idx, edge_id), ...) — the CSR row as one tuple,
    #: so the wavefront iterates pairs instead of indexing three arrays.
    adj: List[Tuple[Tuple[int, int], ...]] = field(repr=False)


class TileGraph:
    """A grid tiling of the die with buffer-site and wire-capacity state.

    The graph owns all mutable planning state:

    * ``B(v)`` — buffer sites per tile (``sites`` array),
    * ``b(v)`` — used buffer sites per tile (``used_sites`` array),
    * ``W(e)`` — wire capacity per tile-boundary edge,
    * ``w(e)`` — wire usage per tile-boundary edge.

    Edges are undirected. A *horizontal* edge ``((x, y), (x+1, y))`` is
    crossed by horizontally running wires; a *vertical* edge
    ``((x, y), (x, y+1))`` by vertically running ones.

    Flat layout: horizontal edge ``(x, y)-(x+1, y)`` has id
    ``x * ny + y``; vertical edge ``(x, y)-(x, y+1)`` has id
    ``num_h_edges + x * (ny - 1) + y``. ``h_usage``/``v_usage`` (and the
    capacity twins) are reshaped views of ``edge_usage``/``edge_capacity``,
    so writes through either spelling stay coherent.
    """

    def __init__(
        self,
        die: Rect,
        nx: int,
        ny: int,
        capacity_model: "CapacityModel | None" = None,
    ) -> None:
        """Create an ``nx`` x ``ny`` tiling of ``die``.

        Args:
            die: the chip outline in mm.
            nx, ny: tile counts in x and y; both must be >= 1.
            capacity_model: source of ``W(e)``; defaults to uniform 10.
        """
        if nx < 1 or ny < 1:
            raise ConfigurationError(f"grid must be at least 1x1, got {nx}x{ny}")
        self.die = die
        self.nx = nx
        self.ny = ny
        self.tile_w = die.width / nx
        self.tile_h = die.height / ny
        model = capacity_model or CapacityModel.uniform(10)
        h_cap = model.horizontal_capacity(self.tile_h)
        v_cap = model.vertical_capacity(self.tile_w)
        self.num_h_edges = max(nx - 1, 0) * ny
        self.num_v_edges = nx * max(ny - 1, 0)
        # Flat edge arrays; h_*/v_* below are reshaped views of these.
        self.edge_capacity = np.empty(self.num_h_edges + self.num_v_edges, dtype=np.int64)
        self.edge_usage = np.zeros_like(self.edge_capacity)
        # Edge views: h_* indexed [x, y] for edge (x,y)-(x+1,y);
        #             v_* indexed [x, y] for edge (x,y)-(x,y+1).
        self.h_capacity = self.edge_capacity[: self.num_h_edges].reshape(
            max(nx - 1, 0), ny
        )
        self.v_capacity = self.edge_capacity[self.num_h_edges :].reshape(
            nx, max(ny - 1, 0)
        )
        self.h_usage = self.edge_usage[: self.num_h_edges].reshape(max(nx - 1, 0), ny)
        self.v_usage = self.edge_usage[self.num_h_edges :].reshape(nx, max(ny - 1, 0))
        self.h_capacity[...] = h_cap
        self.v_capacity[...] = v_cap
        self.sites = np.zeros((nx, ny), dtype=np.int64)
        self.used_sites = np.zeros((nx, ny), dtype=np.int64)
        # Flat (length num_tiles) views of B(v)/b(v); index = x * ny + y.
        self.sites_flat = self.sites.reshape(-1)
        self.used_sites_flat = self.used_sites.reshape(-1)
        #: Cost caches notified when wire usage changes (see cost_cache.py).
        self._cost_caches: list = []
        self._default_cost_cache = None
        #: Site observers notified when b(v)/B(v) changes (see ledger.py).
        self._site_observers: list = []
        #: Non-default buffer-kind occupancy: (flat_index, kind) -> count.
        #: Default-kind usage lives only in ``used_sites``; this map refines
        #: the per-tile totals for sites realized as a specific library cell.
        self.kind_used: Dict[Tuple[int, str], int] = {}
        self._ledger = None
        self._site_cost_cache = None
        self._flat: "FlatTileGraph | None" = None

    # ------------------------------------------------------------------ #
    # Geometry                                                           #
    # ------------------------------------------------------------------ #

    @property
    def num_tiles(self) -> int:
        return self.nx * self.ny

    @property
    def tile_area_mm2(self) -> float:
        return self.tile_w * self.tile_h

    def tiles(self) -> Iterator[Tile]:
        """All tiles in column-major order."""
        for x in range(self.nx):
            for y in range(self.ny):
                yield (x, y)

    def in_bounds(self, tile: Tile) -> bool:
        x, y = tile
        return 0 <= x < self.nx and 0 <= y < self.ny

    def tile_of(self, p: Point) -> Tile:
        """The tile containing point ``p``, clamped onto the die."""
        fx = (p.x - self.die.x0) / self.tile_w if self.tile_w > 0 else 0.0
        fy = (p.y - self.die.y0) / self.tile_h if self.tile_h > 0 else 0.0
        x = min(self.nx - 1, max(0, int(math.floor(fx))))
        y = min(self.ny - 1, max(0, int(math.floor(fy))))
        return (x, y)

    def tile_center(self, tile: Tile) -> Point:
        x, y = tile
        return Point(
            self.die.x0 + (x + 0.5) * self.tile_w,
            self.die.y0 + (y + 0.5) * self.tile_h,
        )

    def tile_rect(self, tile: Tile) -> Rect:
        x, y = tile
        return Rect(
            self.die.x0 + x * self.tile_w,
            self.die.y0 + y * self.tile_h,
            self.die.x0 + (x + 1) * self.tile_w,
            self.die.y0 + (y + 1) * self.tile_h,
        )

    def neighbors(self, tile: Tile) -> List[Tile]:
        """4-neighborhood, in deterministic E/W/N/S order."""
        x, y = tile
        out: List[Tile] = []
        if x + 1 < self.nx:
            out.append((x + 1, y))
        if x - 1 >= 0:
            out.append((x - 1, y))
        if y + 1 < self.ny:
            out.append((x, y + 1))
        if y - 1 >= 0:
            out.append((x, y - 1))
        return out

    def edge_length_mm(self, u: Tile, v: Tile) -> float:
        """Center-to-center distance of adjacent tiles."""
        if u[0] != v[0]:
            return self.tile_w
        return self.tile_h

    # ------------------------------------------------------------------ #
    # Flat indexing                                                      #
    # ------------------------------------------------------------------ #

    def tile_index(self, tile: Tile) -> int:
        """Flat index of ``tile`` (column-major: ``x * ny + y``)."""
        return tile[0] * self.ny + tile[1]

    def tile_at(self, index: int) -> Tile:
        """Inverse of :meth:`tile_index`."""
        return (index // self.ny, index % self.ny)

    def edge_id(self, u: Tile, v: Tile) -> int:
        """Flat edge id of the boundary between adjacent tiles ``u``, ``v``.

        Assumes 4-adjacency (the validated path is :meth:`_edge_index`).
        """
        (ux, uy), (vx, vy) = u, v
        if uy == vy:
            return (ux if ux < vx else vx) * self.ny + uy
        return self.num_h_edges + ux * (self.ny - 1) + (uy if uy < vy else vy)

    def edge_endpoints(self, eid: int) -> Tuple[Tile, Tile]:
        """The (lower, upper) tile pair of flat edge ``eid``."""
        if eid < self.num_h_edges:
            x, y = divmod(eid, self.ny)
            return (x, y), (x + 1, y)
        rem = eid - self.num_h_edges
        x, y = divmod(rem, self.ny - 1)
        return (x, y), (x, y + 1)

    def flat(self) -> FlatTileGraph:
        """The cached index-addressed adjacency (built on first use).

        Topology never changes after construction, so the CSR is built
        exactly once per graph.
        """
        if self._flat is None:
            nx, ny = self.nx, self.ny
            n = nx * ny
            num_h = self.num_h_edges
            indptr = [0] * (n + 1)
            nbrs: List[int] = []
            eids: List[int] = []
            for x in range(nx):
                for y in range(ny):
                    if x + 1 < nx:
                        nbrs.append((x + 1) * ny + y)
                        eids.append(x * ny + y)
                    if x - 1 >= 0:
                        nbrs.append((x - 1) * ny + y)
                        eids.append((x - 1) * ny + y)
                    if y + 1 < ny:
                        nbrs.append(x * ny + y + 1)
                        eids.append(num_h + x * (ny - 1) + y)
                    if y - 1 >= 0:
                        nbrs.append(x * ny + y - 1)
                        eids.append(num_h + x * (ny - 1) + y - 1)
                    indptr[x * ny + y + 1] = len(nbrs)
            pairs = list(zip(nbrs, eids))
            self._flat = FlatTileGraph(
                nx=nx,
                ny=ny,
                num_tiles=n,
                num_edges=self.num_edges,
                indptr=indptr,
                neighbors=nbrs,
                edge_ids=eids,
                tile_x=[i // ny for i in range(n)],
                tile_y=[i % ny for i in range(n)],
                adj=[
                    tuple(pairs[indptr[i] : indptr[i + 1]]) for i in range(n)
                ],
            )
        return self._flat

    # ------------------------------------------------------------------ #
    # Cost-cache registration                                            #
    # ------------------------------------------------------------------ #

    def register_cost_cache(self, cache) -> None:
        """Subscribe ``cache`` to per-edge usage-change notifications."""
        if cache not in self._cost_caches:
            self._cost_caches.append(cache)

    def cost_cache(self):
        """The graph's shared congestion-cost cache (created on first use)."""
        if self._default_cost_cache is None:
            from repro.tilegraph.cost_cache import CongestionCostCache

            self._default_cost_cache = CongestionCostCache(self)
        return self._default_cost_cache

    def _notify_usage_changed(self, eid: int) -> None:
        for cache in self._cost_caches:
            cache.mark_dirty(eid)

    def _notify_all_usage_changed(self) -> None:
        for cache in self._cost_caches:
            cache.mark_all_dirty()
        for observer in self._site_observers:
            observer.all_sites_changed()

    # ------------------------------------------------------------------ #
    # Site-observer registration                                         #
    # ------------------------------------------------------------------ #

    def register_site_observer(self, observer) -> None:
        """Subscribe to per-tile site-change notifications.

        ``observer`` provides ``site_changed(flat_index, delta)``,
        ``all_sites_changed()``, and ``wire_changed(eid, delta)`` —
        the buffer-side mirror of :meth:`register_cost_cache`.
        """
        if observer not in self._site_observers:
            self._site_observers.append(observer)

    def ledger(self):
        """The graph's shared transactional :class:`SiteLedger`
        (created on first use)."""
        if self._ledger is None:
            from repro.tilegraph.ledger import SiteLedger

            self._ledger = SiteLedger(self)
        return self._ledger

    def site_cost_cache(self):
        """The graph's shared Eq. (2) cost cache (created on first use)."""
        if self._site_cost_cache is None:
            from repro.tilegraph.ledger import SiteCostCache

            self._site_cost_cache = SiteCostCache(self)
        return self._site_cost_cache

    def _notify_site_changed(self, index: int, delta: int) -> None:
        for observer in self._site_observers:
            observer.site_changed(index, delta)

    def _notify_all_sites_changed(self) -> None:
        """Broadcast a bulk B(v)/b(v) rewrite (site distribution, load)."""
        for observer in self._site_observers:
            observer.all_sites_changed()

    def _notify_wire_delta(self, eid: int, delta: int) -> None:
        for observer in self._site_observers:
            observer.wire_changed(eid, delta)

    # ------------------------------------------------------------------ #
    # Wire usage / capacity                                              #
    # ------------------------------------------------------------------ #

    def _edge_index(self, u: Tile, v: Tile) -> Tuple[bool, int, int]:
        """(is_horizontal, x, y) of the edge array slot for ``(u, v)``."""
        (ux, uy), (vx, vy) = u, v
        if abs(ux - vx) + abs(uy - vy) != 1:
            raise ConfigurationError(f"tiles {u} and {v} are not adjacent")
        if uy == vy:
            return True, min(ux, vx), uy
        return False, ux, min(uy, vy)

    def _checked_edge_id(self, u: Tile, v: Tile) -> int:
        (ux, uy), (vx, vy) = u, v
        if uy == vy:
            if vx - ux not in (1, -1):
                raise ConfigurationError(f"tiles {u} and {v} are not adjacent")
            return (ux if ux < vx else vx) * self.ny + uy
        if ux != vx or vy - uy not in (1, -1):
            raise ConfigurationError(f"tiles {u} and {v} are not adjacent")
        return self.num_h_edges + ux * (self.ny - 1) + (uy if uy < vy else vy)

    def wire_capacity(self, u: Tile, v: Tile) -> int:
        return int(self.edge_capacity[self._checked_edge_id(u, v)])

    def wire_usage(self, u: Tile, v: Tile) -> int:
        return int(self.edge_usage[self._checked_edge_id(u, v)])

    def add_wire(self, u: Tile, v: Tile, count: int = 1) -> None:
        """Record ``count`` wires crossing edge ``(u, v)`` (negative to remove)."""
        eid = self._checked_edge_id(u, v)
        usage = self.edge_usage
        if usage[eid] + count < 0:
            raise ConfigurationError(f"wire usage on {u}-{v} would go negative")
        usage[eid] += count
        if self._cost_caches:
            self._notify_usage_changed(eid)
        if count and self._site_observers:
            self._notify_wire_delta(eid, count)

    def add_wire_flat(self, eid: int, count: int = 1) -> None:
        """Flat-id variant of :meth:`add_wire` (hot path, unvalidated id)."""
        usage = self.edge_usage
        if usage[eid] + count < 0:
            u, v = self.edge_endpoints(eid)
            raise ConfigurationError(f"wire usage on {u}-{v} would go negative")
        usage[eid] += count
        if self._cost_caches:
            self._notify_usage_changed(eid)
        if count and self._site_observers:
            self._notify_wire_delta(eid, count)

    def set_wire_capacity(self, u: Tile, v: Tile, capacity: int) -> None:
        """Set ``W(e)`` for the boundary edge ``(u, v)``.

        Capacity edits (floorplan deltas, what-if scenarios) invalidate
        the congestion-cost caches for that edge; usage is untouched, so
        the edge may be left overflowing — the planner's rip-up stages
        are expected to resolve that.
        """
        if capacity < 0:
            raise ConfigurationError("wire capacity must be >= 0")
        eid = self._checked_edge_id(u, v)
        self.edge_capacity[eid] = capacity
        if self._cost_caches:
            self._notify_usage_changed(eid)

    def edges(self) -> Iterator[Tuple[Tile, Tile]]:
        """All undirected edges, horizontal first, deterministic order."""
        for x in range(self.nx - 1):
            for y in range(self.ny):
                yield ((x, y), (x + 1, y))
        for x in range(self.nx):
            for y in range(self.ny - 1):
                yield ((x, y), (x, y + 1))

    @property
    def num_edges(self) -> int:
        return self.num_h_edges + self.num_v_edges

    # ------------------------------------------------------------------ #
    # Buffer sites                                                       #
    # ------------------------------------------------------------------ #

    def site_count(self, tile: Tile) -> int:
        """``B(v)``."""
        return int(self.sites[tile])

    def used_site_count(self, tile: Tile) -> int:
        """``b(v)``."""
        return int(self.used_sites[tile])

    def free_sites(self, tile: Tile) -> int:
        return int(self.sites[tile] - self.used_sites[tile])

    def set_sites(self, tile: Tile, count: int) -> None:
        if count < 0:
            raise ConfigurationError("site count must be >= 0")
        if count < self.used_sites[tile]:
            raise ConfigurationError("cannot set sites below current usage")
        self.sites[tile] = count
        if self._site_observers:
            # delta 0: a capacity change invalidates costs but is not a
            # usage delta, so the ledger journals nothing.
            self._notify_site_changed(tile[0] * self.ny + tile[1], 0)

    def use_site(self, tile: Tile, count: int = 1, kind: str = "") -> None:
        """Consume ``count`` buffer sites in ``tile`` (negative to release).

        Over-subscription is allowed (best-effort fallback paths may exceed
        ``B(v)``); constraint checks read the arrays directly. ``kind``
        names the buffer-library cell realized on the sites; the default
        ``""`` books plain (planning-repeater) sites and keeps the hot path
        unchanged.
        """
        self.use_site_flat(tile[0] * self.ny + tile[1], count, kind)

    def use_site_flat(self, index: int, count: int = 1, kind: str = "") -> None:
        """Flat-index variant of :meth:`use_site` (hot path)."""
        used = self.used_sites_flat
        if used[index] + count < 0:
            raise ConfigurationError(
                f"used sites in {self.tile_at(index)} would go negative"
            )
        used[index] += count
        if count and kind:
            self.adjust_kind_used(index, kind, count)
        if count and self._site_observers:
            self._notify_site_changed(index, count)

    def adjust_kind_used(self, index: int, kind: str, delta: int) -> None:
        """Adjust the per-kind refinement of ``used_sites`` (no total change).

        Used by :meth:`use_site_flat` for kinded bookings and by the
        :class:`~repro.tilegraph.ledger.SiteLedger` rollback replay, which
        must undo the kind refinement separately from the site total.
        """
        if not delta:
            return
        key = (index, kind)
        value = self.kind_used.get(key, 0) + delta
        if value < 0:
            raise ConfigurationError(
                f"kind {kind!r} usage in {self.tile_at(index)} would go negative"
            )
        if value:
            self.kind_used[key] = value
        else:
            self.kind_used.pop(key, None)
        if self._site_observers:
            for observer in self._site_observers:
                hook = getattr(observer, "site_kind_changed", None)
                if hook is not None:
                    hook(index, kind, delta)

    @property
    def total_sites(self) -> int:
        return int(self.sites.sum())

    @property
    def total_used_sites(self) -> int:
        return int(self.used_sites.sum())

    def reset_usage(self) -> None:
        """Clear all wire and buffer usage (capacities and sites kept)."""
        self.edge_usage[:] = 0
        self.used_sites[:] = 0
        self.kind_used.clear()
        self._notify_all_usage_changed()

    def snapshot_usage(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
        """Copies of (h_usage, v_usage, used_sites, kind_used) for
        save/restore."""
        return (
            self.h_usage.copy(),
            self.v_usage.copy(),
            self.used_sites.copy(),
            dict(self.kind_used),
        )

    def restore_usage(self, snapshot: Tuple) -> None:
        """Restore a :meth:`snapshot_usage` tuple.

        Accepts the legacy 3-tuple (no kind map) by clearing the per-kind
        refinement, so snapshots taken before kinds existed still restore.
        """
        h, v, b = snapshot[:3]
        self.h_usage[:] = h
        self.v_usage[:] = v
        self.used_sites[:] = b
        self.kind_used.clear()
        if len(snapshot) > 3:
            self.kind_used.update(snapshot[3])
        self._notify_all_usage_changed()
