"""The tile graph: grid, buffer sites, wire capacities and usages."""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.tilegraph.capacity import CapacityModel

#: A tile is addressed by integer grid coordinates ``(x, y)`` with the
#: origin tile (0, 0) at the lower-left corner of the die.
Tile = Tuple[int, int]


class TileGraph:
    """A grid tiling of the die with buffer-site and wire-capacity state.

    The graph owns all mutable planning state:

    * ``B(v)`` — buffer sites per tile (``sites`` array),
    * ``b(v)`` — used buffer sites per tile (``used_sites`` array),
    * ``W(e)`` — wire capacity per tile-boundary edge,
    * ``w(e)`` — wire usage per tile-boundary edge.

    Edges are undirected. A *horizontal* edge ``((x, y), (x+1, y))`` is
    crossed by horizontally running wires; a *vertical* edge
    ``((x, y), (x, y+1))`` by vertically running ones.
    """

    def __init__(
        self,
        die: Rect,
        nx: int,
        ny: int,
        capacity_model: "CapacityModel | None" = None,
    ) -> None:
        """Create an ``nx`` x ``ny`` tiling of ``die``.

        Args:
            die: the chip outline in mm.
            nx, ny: tile counts in x and y; both must be >= 1.
            capacity_model: source of ``W(e)``; defaults to uniform 10.
        """
        if nx < 1 or ny < 1:
            raise ConfigurationError(f"grid must be at least 1x1, got {nx}x{ny}")
        self.die = die
        self.nx = nx
        self.ny = ny
        self.tile_w = die.width / nx
        self.tile_h = die.height / ny
        model = capacity_model or CapacityModel.uniform(10)
        h_cap = model.horizontal_capacity(self.tile_h)
        v_cap = model.vertical_capacity(self.tile_w)
        # Edge arrays: h_* indexed [x, y] for edge (x,y)-(x+1,y);
        #              v_* indexed [x, y] for edge (x,y)-(x,y+1).
        self.h_capacity = np.full((max(nx - 1, 0), ny), h_cap, dtype=np.int64)
        self.v_capacity = np.full((nx, max(ny - 1, 0)), v_cap, dtype=np.int64)
        self.h_usage = np.zeros_like(self.h_capacity)
        self.v_usage = np.zeros_like(self.v_capacity)
        self.sites = np.zeros((nx, ny), dtype=np.int64)
        self.used_sites = np.zeros((nx, ny), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Geometry                                                           #
    # ------------------------------------------------------------------ #

    @property
    def num_tiles(self) -> int:
        return self.nx * self.ny

    @property
    def tile_area_mm2(self) -> float:
        return self.tile_w * self.tile_h

    def tiles(self) -> Iterator[Tile]:
        """All tiles in column-major order."""
        for x in range(self.nx):
            for y in range(self.ny):
                yield (x, y)

    def in_bounds(self, tile: Tile) -> bool:
        x, y = tile
        return 0 <= x < self.nx and 0 <= y < self.ny

    def tile_of(self, p: Point) -> Tile:
        """The tile containing point ``p``, clamped onto the die."""
        fx = (p.x - self.die.x0) / self.tile_w if self.tile_w > 0 else 0.0
        fy = (p.y - self.die.y0) / self.tile_h if self.tile_h > 0 else 0.0
        x = min(self.nx - 1, max(0, int(math.floor(fx))))
        y = min(self.ny - 1, max(0, int(math.floor(fy))))
        return (x, y)

    def tile_center(self, tile: Tile) -> Point:
        x, y = tile
        return Point(
            self.die.x0 + (x + 0.5) * self.tile_w,
            self.die.y0 + (y + 0.5) * self.tile_h,
        )

    def tile_rect(self, tile: Tile) -> Rect:
        x, y = tile
        return Rect(
            self.die.x0 + x * self.tile_w,
            self.die.y0 + y * self.tile_h,
            self.die.x0 + (x + 1) * self.tile_w,
            self.die.y0 + (y + 1) * self.tile_h,
        )

    def neighbors(self, tile: Tile) -> List[Tile]:
        """4-neighborhood, in deterministic E/W/N/S order."""
        x, y = tile
        out: List[Tile] = []
        if x + 1 < self.nx:
            out.append((x + 1, y))
        if x - 1 >= 0:
            out.append((x - 1, y))
        if y + 1 < self.ny:
            out.append((x, y + 1))
        if y - 1 >= 0:
            out.append((x, y - 1))
        return out

    def edge_length_mm(self, u: Tile, v: Tile) -> float:
        """Center-to-center distance of adjacent tiles."""
        if u[0] != v[0]:
            return self.tile_w
        return self.tile_h

    # ------------------------------------------------------------------ #
    # Wire usage / capacity                                              #
    # ------------------------------------------------------------------ #

    def _edge_index(self, u: Tile, v: Tile) -> Tuple[bool, int, int]:
        """(is_horizontal, x, y) of the edge array slot for ``(u, v)``."""
        (ux, uy), (vx, vy) = u, v
        if abs(ux - vx) + abs(uy - vy) != 1:
            raise ConfigurationError(f"tiles {u} and {v} are not adjacent")
        if uy == vy:
            return True, min(ux, vx), uy
        return False, ux, min(uy, vy)

    def wire_capacity(self, u: Tile, v: Tile) -> int:
        horizontal, x, y = self._edge_index(u, v)
        return int(self.h_capacity[x, y] if horizontal else self.v_capacity[x, y])

    def wire_usage(self, u: Tile, v: Tile) -> int:
        horizontal, x, y = self._edge_index(u, v)
        return int(self.h_usage[x, y] if horizontal else self.v_usage[x, y])

    def add_wire(self, u: Tile, v: Tile, count: int = 1) -> None:
        """Record ``count`` wires crossing edge ``(u, v)`` (negative to remove)."""
        horizontal, x, y = self._edge_index(u, v)
        array = self.h_usage if horizontal else self.v_usage
        if array[x, y] + count < 0:
            raise ConfigurationError(f"wire usage on {u}-{v} would go negative")
        array[x, y] += count

    def edges(self) -> Iterator[Tuple[Tile, Tile]]:
        """All undirected edges, horizontal first, deterministic order."""
        for x in range(self.nx - 1):
            for y in range(self.ny):
                yield ((x, y), (x + 1, y))
        for x in range(self.nx):
            for y in range(self.ny - 1):
                yield ((x, y), (x, y + 1))

    @property
    def num_edges(self) -> int:
        return self.h_usage.size + self.v_usage.size

    # ------------------------------------------------------------------ #
    # Buffer sites                                                       #
    # ------------------------------------------------------------------ #

    def site_count(self, tile: Tile) -> int:
        """``B(v)``."""
        return int(self.sites[tile])

    def used_site_count(self, tile: Tile) -> int:
        """``b(v)``."""
        return int(self.used_sites[tile])

    def free_sites(self, tile: Tile) -> int:
        return int(self.sites[tile] - self.used_sites[tile])

    def set_sites(self, tile: Tile, count: int) -> None:
        if count < 0:
            raise ConfigurationError("site count must be >= 0")
        if count < self.used_sites[tile]:
            raise ConfigurationError("cannot set sites below current usage")
        self.sites[tile] = count

    def use_site(self, tile: Tile, count: int = 1) -> None:
        """Consume ``count`` buffer sites in ``tile`` (negative to release).

        Over-subscription is allowed (best-effort fallback paths may exceed
        ``B(v)``); constraint checks read the arrays directly.
        """
        if self.used_sites[tile] + count < 0:
            raise ConfigurationError(f"used sites in {tile} would go negative")
        self.used_sites[tile] += count

    @property
    def total_sites(self) -> int:
        return int(self.sites.sum())

    @property
    def total_used_sites(self) -> int:
        return int(self.used_sites.sum())

    def reset_usage(self) -> None:
        """Clear all wire and buffer usage (capacities and sites kept)."""
        self.h_usage[:] = 0
        self.v_usage[:] = 0
        self.used_sites[:] = 0

    def snapshot_usage(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of (h_usage, v_usage, used_sites) for save/restore."""
        return self.h_usage.copy(), self.v_usage.copy(), self.used_sites.copy()

    def restore_usage(
        self, snapshot: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        h, v, b = snapshot
        self.h_usage[:] = h
        self.v_usage[:] = v
        self.used_sites[:] = b
