"""Transactional buffer-site ledger and the Eq. (2) site-cost cache.

Stage 3/4 code used to protect multi-step usage mutations by hand:
snapshot ``b(v)`` (or remember per-tile rip counts), mutate, and restore
in an ``except`` block — one forgotten path and the accounting silently
drifts. The :class:`SiteLedger` replaces every such snapshot/restore with
*transaction scopes*: every ``use_site`` / ``add_wire`` delta performed
while a scope is open is journaled, a normal exit commits (folds the
journal into the enclosing scope, if any), and an exception — or an
explicit ``rollback()`` — replays the inverse deltas in reverse order.
Partial-failure paths are exception-safe by construction.

The ledger views the graph's site state as flat vectors (``used`` /
``capacity``, index = ``x * ny + y`` — the same flat tile arithmetic the
routing kernel uses), so feasibility probes are array reads, not dict
lookups over ``(x, y)`` tuples.

:class:`SiteCostCache` is the buffer-side twin of
:class:`repro.tilegraph.cost_cache.CongestionCostCache`: it materializes
the Eq. (2) cost

    q(v) = (b(v) + 1) / (B(v) - b(v))   when b(v)/B(v) < 1 and B(v) > 0
           infinity                     otherwise

(the ``p(v) = 0`` form — Stage 3 adds the probability term on top, see
``repro.core.solver``) for every tile as a plain Python list, recomputed
vectorized over only the tiles whose ``b(v)`` or ``B(v)`` changed. Both
classes subscribe to the graph's site-observer hook
(:meth:`TileGraph.register_site_observer`), which mirrors the cost-cache
registration for wire edges.

Thread-safety contract (same as the congestion cache): mutation, refresh,
and transactions happen on the coordinating thread; concurrent *readers*
of a refreshed cost list are safe while no usage changes underneath them
(the parallel Stage-3 batch protocol guarantees this).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tilegraph.graph import Tile, TileGraph

#: Journal entry kinds.
_SITE = 0
_WIRE = 1
#: Per-kind refinement of a site booking: ident is ``(index, kind_name)``.
#: Always journaled alongside the matching ``_SITE`` entry (a kinded
#: ``use_site`` produces both), and undone via
#: :meth:`TileGraph.adjust_kind_used` so the rollback of the ``_SITE``
#: entry is not double-counted.
_KIND = 2


class Transaction:
    """Handle for one open ledger scope (see :meth:`SiteLedger.begin`).

    ``commit()`` / ``rollback()`` may be called once, innermost-first;
    the :meth:`SiteLedger.transaction` context manager calls whichever is
    still pending when the scope exits.
    """

    __slots__ = ("_ledger", "_depth", "closed")

    def __init__(self, ledger: "SiteLedger", depth: int) -> None:
        self._ledger = ledger
        self._depth = depth
        self.closed = False

    def commit(self) -> None:
        self._ledger.commit(self)

    def rollback(self) -> int:
        return self._ledger.rollback(self)


class SiteLedger:
    """Flat transactional view of a graph's buffer-site accounting."""

    __slots__ = (
        "_graph",
        "used",
        "capacity",
        "_journals",
        "_replaying",
        "commits",
        "rollbacks",
        "entries_rolled_back",
    )

    def __init__(self, graph: "TileGraph") -> None:
        self._graph = graph
        #: Flat (length ``num_tiles``) views of ``b(v)`` / ``B(v)`` —
        #: live aliases of ``graph.used_sites`` / ``graph.sites``.
        self.used = graph.used_sites.reshape(-1)
        self.capacity = graph.sites.reshape(-1)
        self._journals: List[List[Tuple[int, int, int]]] = []
        self._replaying = False
        #: Telemetry counters (read by the obs layer / tests).
        self.commits = 0
        self.rollbacks = 0
        self.entries_rolled_back = 0
        graph.register_site_observer(self)

    # -- flat reads ----------------------------------------------------- #

    def free(self, index: int) -> int:
        """Free sites of flat tile ``index`` (may be negative: the greedy
        fallback is allowed to overbook as a best effort)."""
        return int(self.capacity[index] - self.used[index])

    def free_tile(self, tile: "Tile") -> int:
        return self.free(self._graph.tile_index(tile))

    def overbooked_indices(self) -> List[int]:
        """Flat indices of tiles with ``b(v) > B(v)``."""
        return np.nonzero(self.used > self.capacity)[0].tolist()

    # -- observer protocol (fed by the graph) --------------------------- #

    def site_changed(self, index: int, delta: int) -> None:
        if self._journals and delta and not self._replaying:
            self._journals[-1].append((_SITE, index, delta))

    def site_kind_changed(self, index: int, kind: str, delta: int) -> None:
        if self._journals and delta and not self._replaying:
            self._journals[-1].append((_KIND, (index, kind), delta))

    def all_sites_changed(self) -> None:
        if self._journals:
            raise ConfigurationError(
                "bulk site/usage reset inside an open SiteLedger transaction"
            )

    def wire_changed(self, eid: int, delta: int) -> None:
        if self._journals and delta and not self._replaying:
            self._journals[-1].append((_WIRE, eid, delta))

    @property
    def active(self) -> bool:
        """True while at least one transaction scope is open."""
        return bool(self._journals)

    @property
    def depth(self) -> int:
        return len(self._journals)

    # -- transactions --------------------------------------------------- #

    def begin(self) -> Transaction:
        """Open a scope; every site/wire delta until close is journaled."""
        self._journals.append([])
        return Transaction(self, len(self._journals) - 1)

    def _check_innermost(self, txn: Transaction) -> None:
        if txn.closed:
            raise ConfigurationError("transaction already closed")
        if txn._depth != len(self._journals) - 1:
            raise ConfigurationError(
                "transactions must be closed innermost-first"
            )

    def commit(self, txn: Transaction) -> None:
        """Close ``txn`` keeping its effects.

        Inside an enclosing scope the journal is folded into the parent,
        so an outer rollback still undoes inner committed work.
        """
        self._check_innermost(txn)
        journal = self._journals.pop()
        if self._journals:
            self._journals[-1].extend(journal)
        txn.closed = True
        self.commits += 1

    def rollback(self, txn: Transaction) -> int:
        """Close ``txn`` undoing its effects; returns entries replayed."""
        self._check_innermost(txn)
        journal = self._journals.pop()
        graph = self._graph
        self._replaying = True
        try:
            for kind, ident, delta in reversed(journal):
                if kind == _SITE:
                    graph.use_site_flat(ident, -delta)
                elif kind == _KIND:
                    graph.adjust_kind_used(ident[0], ident[1], -delta)
                else:
                    graph.add_wire_flat(ident, -delta)
        finally:
            self._replaying = False
        txn.closed = True
        self.rollbacks += 1
        self.entries_rolled_back += len(journal)
        return len(journal)

    # -- whole-state snapshots ------------------------------------------ #

    def snapshot_state(self) -> "dict[str, List[int]]":
        """JSON-able copy of the ledger's used/capacity vectors.

        The service checkpoints call this so a restarted process resumes
        with the exact ``b(v)``/``B(v)`` accounting of the saved plan.
        """
        state: "dict[str, object]" = {
            "used": self.used.tolist(),
            "capacity": self.capacity.tolist(),
        }
        if self._graph.kind_used:
            state["kinds"] = sorted(
                [index, kind, count]
                for (index, kind), count in self._graph.kind_used.items()
            )
        return state

    def restore_state(self, state: "dict[str, List[int]]") -> None:
        """Install a :meth:`snapshot_state` payload onto the graph.

        Refused while a transaction is open (the journal could not undo a
        bulk overwrite), and on length mismatches against this graph.
        """
        if self._journals:
            raise ConfigurationError(
                "cannot restore ledger state inside an open transaction"
            )
        used = state["used"]
        capacity = state["capacity"]
        if len(used) != self.used.shape[0] or len(capacity) != self.capacity.shape[0]:
            raise ConfigurationError(
                f"ledger state is for {len(used)} tiles, graph has "
                f"{self.used.shape[0]}"
            )
        self.capacity[:] = np.asarray(capacity, dtype=np.int64)
        self.used[:] = np.asarray(used, dtype=np.int64)
        # Legacy payloads predate per-kind accounting: no "kinds" key means
        # every booked site was the default repeater.
        self._graph.kind_used.clear()
        for index, kind, count in state.get("kinds", ()):
            self._graph.kind_used[(int(index), str(kind))] = int(count)
        self._graph._notify_all_sites_changed()

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Scope that commits on success and rolls back on exception.

        The yielded :class:`Transaction` supports an early explicit
        ``rollback()`` (e.g. the Stage-3 oversubscription retry); the
        scope exit then does nothing.
        """
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                self.rollback(txn)
            raise
        else:
            if not txn.closed:
                self.commit(txn)


class SiteCostCache:
    """Per-tile Eq. (2) cost at ``p(v) = 0`` with dirty-set invalidation.

    The buffer-side mirror of :class:`CongestionCostCache`: Stage 4's
    buffered-path wavefront reads ``q(v)`` once per expansion, and the
    rescue pass once per candidate tile — list indexing on a lazily
    refreshed flat vector instead of two NumPy scalar probes and a
    division per read.
    """

    __slots__ = (
        "_graph",
        "_costs",
        "_dirty",
        "_all_dirty",
        "refreshes",
        "tiles_recomputed",
        "invalidations",
    )

    def __init__(self, graph: "TileGraph") -> None:
        self._graph = graph
        self._costs: List[float] = [0.0] * graph.num_tiles
        self._dirty: Set[int] = set()
        self._all_dirty = True
        #: Telemetry counters (read by the obs layer / tests).
        self.refreshes = 0
        self.tiles_recomputed = 0
        self.invalidations = 0
        graph.register_site_observer(self)

    # -- observer protocol ---------------------------------------------- #

    def site_changed(self, index: int, delta: int) -> None:
        self.invalidations += 1
        if not self._all_dirty:
            self._dirty.add(index)

    def all_sites_changed(self) -> None:
        self.invalidations += 1
        self._all_dirty = True
        self._dirty.clear()

    def wire_changed(self, eid: int, delta: int) -> None:
        pass  # q(v) does not depend on wire usage

    @property
    def dirty_count(self) -> int:
        return self._graph.num_tiles if self._all_dirty else len(self._dirty)

    # -- refresh -------------------------------------------------------- #

    @staticmethod
    def compute(sites: np.ndarray, used: np.ndarray) -> np.ndarray:
        """Vectorized Eq. (2) at ``p = 0`` (bit-identical to the scalar
        formula: both are IEEE-754 double ops on exactly represented
        integers)."""
        in_capacity = (sites > 0) & (used < sites)
        q = np.full(np.shape(sites), np.inf)
        np.divide(used + 1.0, sites - used, out=q, where=in_capacity)
        return q

    def refresh(self) -> int:
        """Recompute pending tiles; returns how many were recomputed."""
        graph = self._graph
        sites = graph.sites.reshape(-1)
        used = graph.used_sites.reshape(-1)
        if self._all_dirty:
            self._costs[:] = self.compute(sites, used).tolist()
            recomputed = graph.num_tiles
            self._all_dirty = False
            self._dirty.clear()
        elif self._dirty:
            idx = np.fromiter(self._dirty, dtype=np.int64, count=len(self._dirty))
            values = self.compute(sites[idx], used[idx])
            costs = self._costs
            for i, q in zip(idx.tolist(), values.tolist()):
                costs[i] = q
            recomputed = len(self._dirty)
            self._dirty.clear()
        else:
            return 0
        self.refreshes += 1
        self.tiles_recomputed += recomputed
        return recomputed

    # -- lookup --------------------------------------------------------- #

    def costs(self) -> List[float]:
        """The flat ``q(v)`` list, refreshed if stale.

        The returned list is live — do not mutate it; re-call after any
        site change.
        """
        if self._all_dirty or self._dirty:
            self.refresh()
        return self._costs

    def cost(self, tile: "Tile") -> float:
        """Scalar convenience lookup (tests/diagnostics)."""
        return self.costs()[self._graph.tile_index(tile)]

    def cost_fn(self):
        """A ``q(v)`` callable over tiles, reading the cached list.

        Refreshes lazily on every call (the staleness probe is two
        attribute reads), so the closure stays correct across the site
        bookings interleaved with Stage-4 path searches.
        """
        ny = self._graph.ny

        def q_of(tile: "Tile") -> float:
            if self._all_dirty or self._dirty:
                self.refresh()
            return self._costs[tile[0] * ny + tile[1]]

        return q_of
