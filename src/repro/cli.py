"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run <circuit>`` — run RABID on one benchmark, print the stage table
  and (optionally) ASCII maps.
* ``table1`` — print the realized Table I.
* ``table2|table3|table4 <circuit>`` — regenerate one circuit's rows.
* ``table5 <circuit>`` — RABID-vs-BBP comparison rows.
* ``list`` — list available benchmarks.
* ``serve`` — run the incremental planning service (JSON-lines protocol).
* ``submit`` — submit a job to a running service and print the result.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import buffer_usage_map, wire_congestion_map
from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.core import RabidConfig, RabidPlanner
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_table1,
    run_table2_circuit,
    run_table3_circuit,
    run_table4_circuit,
    run_table5_circuit,
)
from repro.experiments.formatting import render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RABID buffer/wire resource allocation (DAC 2001 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="benchmark seed")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run RABID on one benchmark")
    run.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))
    run.add_argument(
        "--workers", type=int, default=1,
        help="Stage-2 reroute threads (1 = sequential, byte-identical)",
    )
    run.add_argument(
        "--stage3-workers", type=int, default=1,
        help="Stage-3 buffering threads (output identical at any count)",
    )
    run.add_argument(
        "--stage3-solver", default="dp",
        help="Stage-3 buffering strategy (dp, single_sink, greedy, "
        "van_ginneken)",
    )
    run.add_argument("--maps", action="store_true", help="print ASCII maps")
    run.add_argument(
        "--diagnose", action="store_true",
        help="classify why any failing nets miss the length rule",
    )
    run.add_argument("--stage4-iterations", type=int, default=2)
    run.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL trace (spans, metrics, per-net events) to PATH",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print the tracer summary (span tree, counters, event totals)",
    )

    sub.add_parser("table1", help="print Table I")
    for name in ("table2", "table3", "table4", "table5"):
        p = sub.add_parser(name, help=f"regenerate {name} for one circuit")
        p.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))

    sub.add_parser("list", help="list benchmarks")

    serve = sub.add_parser(
        "serve", help="run the incremental planning service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--service-workers", type=int, default=2,
        help="concurrent planning jobs",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="queued-job cap before submits shed",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0,
        help="per-job wall-clock budget in seconds",
    )
    serve.add_argument(
        "--verify-fraction", type=float, default=0.05,
        help="fraction of incremental jobs verified against a full re-plan",
    )
    serve.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="restore baselines from DIR on start; checkpoint on shutdown",
    )

    submit = sub.add_parser(
        "submit", help="submit a job (JSON file or stdin) to a service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument(
        "job", nargs="?", default="-",
        help="path to a job JSON file, or - for stdin (default)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return after enqueueing instead of waiting for the result",
    )
    return parser


def _check_worker_flags(args) -> None:
    """Validate the worker-knob interplay with the machine.

    Values below 1 are rejected (exit 2); values beyond ``os.cpu_count()``
    are *clamped* to it with a clear warning on stderr — oversubscribing
    threads past the core count only adds contention, and results are
    identical at any worker count, so degrading to the machine's
    capacity is always safe. Library callers are unaffected — only the
    CLI flags are validated.
    """
    cpus = os.cpu_count() or 1
    for flag, attr in (("--workers", "workers"),
                       ("--stage3-workers", "stage3_workers")):
        value = getattr(args, attr, 1)
        if value < 1:
            # Leave sub-1 values to RabidConfig's own validation so the
            # error message stays the library's.
            continue
        if value > cpus:
            print(
                f"warning: clamping {flag}={value} to {cpus} "
                f"(this machine has {cpus} CPU core(s))",
                file=sys.stderr,
            )
            setattr(args, attr, cpus)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core import RabidConfig as _Config
    from repro.service.protocol import ProtocolServer
    from repro.service.scheduler import PlanningService, SchedulerOptions

    options = SchedulerOptions(
        workers=args.service_workers,
        max_queue=args.max_queue,
        job_timeout=args.job_timeout,
        verify_fraction=args.verify_fraction,
    )

    async def _serve() -> None:
        service = PlanningService(config=_Config(), options=options)
        if args.checkpoint_dir and os.path.isdir(args.checkpoint_dir):
            from repro.service.checkpoint import load_service_checkpoints

            loaded = load_service_checkpoints(args.checkpoint_dir, service)
            if loaded:
                print(f"restored baselines: {', '.join(loaded)}", flush=True)
        server = ProtocolServer(service)
        await server.start(args.host, args.port)
        # The one line clients parse to find the port (tests, CI smoke).
        print(f"serving on {args.host}:{server.port}", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            if args.checkpoint_dir:
                from repro.service.checkpoint import save_service_checkpoints

                save_service_checkpoints(args.checkpoint_dir, service)

    asyncio.run(_serve())
    return 0


def _cmd_submit(args) -> int:
    import asyncio
    import json

    from repro.service.protocol import request_over_stream

    if args.job == "-":
        payload = sys.stdin.read()
    else:
        with open(args.job, "r", encoding="utf-8") as fh:
            payload = fh.read()
    try:
        job = json.loads(payload)
    except ValueError as exc:
        raise ConfigurationError(f"job is not valid JSON: {exc}") from exc
    requests = [{"op": "submit", "job": job}]
    if not args.no_wait:
        requests.append({"op": "wait", "job_id": job.get("job_id")})
    responses = asyncio.run(
        request_over_stream(args.host, args.port, requests)
    )
    final = responses[-1]
    print(json.dumps(final, indent=2))
    return 0 if final.get("ok") else 1


def _cmd_run(args) -> int:
    if args.trace:
        # Fail before the (multi-second) plan, not at export time.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
    bench = load_benchmark(args.circuit, seed=args.seed)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=args.stage4_iterations,
        workers=args.workers,
        stage3_workers=args.stage3_workers,
        stage3_solver=args.stage3_solver,
    )
    tracer = None
    if args.trace or args.metrics:
        from repro.obs import Tracer

        tracer = Tracer()
    planner = RabidPlanner(bench.graph, bench.netlist, config, tracer=tracer)
    result = planner.run()
    headers = [
        "stage", "wire max", "wire avg", "overflows", "buf max", "buf avg",
        "#bufs", "#fails", "wirelength", "delay max", "delay avg", "CPU(s)",
    ]
    print(render_table(headers, [m.as_row() for m in result.stage_metrics]))
    if args.maps:
        print("\nwire congestion (per-tile worst edge):")
        print(wire_congestion_map(bench.graph))
        print("\nbuffer usage (X = no sites):")
        print(buffer_usage_map(bench.graph))
    if args.diagnose and result.failed_nets:
        from repro.analysis import diagnose_failures, failure_summary

        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.limit_for(n) for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        print("\nfailure diagnosis:")
        for d in diags:
            print(
                f"  {d.net_name}: {d.cause.value} "
                f"({d.violations} gate(s) over-driven, "
                f"{d.tiles_in_blocked_region} tiles in the blocked region)"
            )
        print("  summary:", failure_summary(diags))
    if tracer is not None:
        if args.metrics:
            from repro.obs import render_summary

            print("\n" + render_summary(tracer))
        if args.trace:
            lines = tracer.export_jsonl(args.trace)
            print(f"\ntrace: {lines} records -> {args.trace}")
    return 0


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")


def _dispatch(args) -> int:
    if args.seed < 0:
        raise ConfigurationError(f"seed must be >= 0, got {args.seed}")
    experiment = ExperimentConfig(seed=args.seed)
    if args.command == "list":
        for name, spec in sorted(BENCHMARK_SPECS.items()):
            kind = "random" if spec.is_random else "CBL"
            print(f"{name:8s} {kind:6s} {spec.nets:5d} nets {spec.sinks:5d} sinks")
        return 0
    if args.command == "run":
        _check_worker_flags(args)
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "table1":
        print(format_table1(run_table1(seed=args.seed)))
        return 0
    if args.command == "table2":
        print(format_table2(run_table2_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table3":
        print(format_table3(run_table3_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table4":
        print(format_table4(run_table4_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table5":
        print(format_table5(run_table5_circuit(args.circuit, experiment)))
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
