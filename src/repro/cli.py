"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run <circuit>`` — run RABID on one benchmark, print the stage table
  and (optionally) ASCII maps.
* ``table1`` — print the realized Table I.
* ``table2|table3|table4 <circuit>`` — regenerate one circuit's rows.
* ``table5 <circuit>`` — RABID-vs-BBP comparison rows.
* ``list`` — list available benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import buffer_usage_map, wire_congestion_map
from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.core import RabidConfig, RabidPlanner
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_table1,
    run_table2_circuit,
    run_table3_circuit,
    run_table4_circuit,
    run_table5_circuit,
)
from repro.experiments.formatting import render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RABID buffer/wire resource allocation (DAC 2001 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="benchmark seed")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run RABID on one benchmark")
    run.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))
    run.add_argument(
        "--workers", type=int, default=1,
        help="Stage-2 reroute threads (1 = sequential, byte-identical)",
    )
    run.add_argument(
        "--stage3-workers", type=int, default=1,
        help="Stage-3 buffering threads (output identical at any count)",
    )
    run.add_argument(
        "--stage3-solver", default="dp",
        help="Stage-3 buffering strategy (dp, single_sink, greedy, "
        "van_ginneken)",
    )
    run.add_argument("--maps", action="store_true", help="print ASCII maps")
    run.add_argument(
        "--diagnose", action="store_true",
        help="classify why any failing nets miss the length rule",
    )
    run.add_argument("--stage4-iterations", type=int, default=2)
    run.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL trace (spans, metrics, per-net events) to PATH",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print the tracer summary (span tree, counters, event totals)",
    )

    sub.add_parser("table1", help="print Table I")
    for name in ("table2", "table3", "table4", "table5"):
        p = sub.add_parser(name, help=f"regenerate {name} for one circuit")
        p.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))

    sub.add_parser("list", help="list benchmarks")
    return parser


def _cmd_run(args) -> int:
    if args.trace:
        # Fail before the (multi-second) plan, not at export time.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
    bench = load_benchmark(args.circuit, seed=args.seed)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=args.stage4_iterations,
        workers=args.workers,
        stage3_workers=args.stage3_workers,
        stage3_solver=args.stage3_solver,
    )
    tracer = None
    if args.trace or args.metrics:
        from repro.obs import Tracer

        tracer = Tracer()
    planner = RabidPlanner(bench.graph, bench.netlist, config, tracer=tracer)
    result = planner.run()
    headers = [
        "stage", "wire max", "wire avg", "overflows", "buf max", "buf avg",
        "#bufs", "#fails", "wirelength", "delay max", "delay avg", "CPU(s)",
    ]
    print(render_table(headers, [m.as_row() for m in result.stage_metrics]))
    if args.maps:
        print("\nwire congestion (per-tile worst edge):")
        print(wire_congestion_map(bench.graph))
        print("\nbuffer usage (X = no sites):")
        print(buffer_usage_map(bench.graph))
    if args.diagnose and result.failed_nets:
        from repro.analysis import diagnose_failures, failure_summary

        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.limit_for(n) for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        print("\nfailure diagnosis:")
        for d in diags:
            print(
                f"  {d.net_name}: {d.cause.value} "
                f"({d.violations} gate(s) over-driven, "
                f"{d.tiles_in_blocked_region} tiles in the blocked region)"
            )
        print("  summary:", failure_summary(diags))
    if tracer is not None:
        if args.metrics:
            from repro.obs import render_summary

            print("\n" + render_summary(tracer))
        if args.trace:
            lines = tracer.export_jsonl(args.trace)
            print(f"\ntrace: {lines} records -> {args.trace}")
    return 0


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")


def _dispatch(args) -> int:
    if args.seed < 0:
        raise ConfigurationError(f"seed must be >= 0, got {args.seed}")
    experiment = ExperimentConfig(seed=args.seed)
    if args.command == "list":
        for name, spec in sorted(BENCHMARK_SPECS.items()):
            kind = "random" if spec.is_random else "CBL"
            print(f"{name:8s} {kind:6s} {spec.nets:5d} nets {spec.sinks:5d} sinks")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        print(format_table1(run_table1(seed=args.seed)))
        return 0
    if args.command == "table2":
        print(format_table2(run_table2_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table3":
        print(format_table3(run_table3_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table4":
        print(format_table4(run_table4_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table5":
        print(format_table5(run_table5_circuit(args.circuit, experiment)))
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
