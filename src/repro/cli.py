"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run <circuit>`` — run RABID on one benchmark, print the stage table
  and (optionally) ASCII maps.
* ``table1`` — print the realized Table I.
* ``table2|table3|table4 <circuit>`` — regenerate one circuit's rows.
* ``table5 <circuit>`` — RABID-vs-BBP comparison rows.
* ``list`` — list available benchmarks (``--json`` for machine-readable).
* ``serve`` — run the incremental planning service (JSON-lines
  protocol); ``--fleet-workers N`` shards baselines over N planner
  processes.
* ``loadgen`` — drive a seeded open-loop load trace through an
  in-process service and print the throughput/latency report.
* ``submit`` — submit a job to a running service and print the result.
* ``explore`` — sweep resource budgets over a scenario space and report
  the Pareto frontier (see ``docs/EXPLORE.md``); ``--bound gk`` adds a
  certified ``optimality_gap`` per scenario.
* ``bound`` — run the buffered-MCF lower-bound oracle on one scenario
  and print the certified bound (``--compare`` for the gap vs the RABID
  plan, ``--cert``/``--verify`` for the dual certificate).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import buffer_usage_map, wire_congestion_map
from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.core import RabidConfig, RabidPlanner
from repro.errors import ConfigurationError, ReproError
from repro.experiments import (
    ExperimentConfig,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_table1,
    run_table2_circuit,
    run_table3_circuit,
    run_table4_circuit,
    run_table5_circuit,
)
from repro.experiments.formatting import render_table


def _capabilities() -> dict:
    """The pluggable engine registries, for ``--version``/``list --json``."""
    from repro.bounds.oracle import BOUND_MODES
    from repro.core.solver import SOLVER_NAMES
    from repro.technology import LIBRARY_NAMES

    return {
        "routers": ["pd", "mcf"],
        "stage3_solvers": list(SOLVER_NAMES),
        "bound_modes": list(BOUND_MODES),
        "buffer_libraries": list(LIBRARY_NAMES),
    }


def _version_string(version: str) -> str:
    caps = _capabilities()
    details = "; ".join(
        f"{key}: {', '.join(values)}" for key, values in caps.items()
    )
    return f"%(prog)s {version} ({details})"


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="RABID buffer/wire resource allocation (DAC 2001 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=_version_string(__version__)
    )
    parser.add_argument("--seed", type=int, default=0, help="benchmark seed")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run RABID on one benchmark")
    run.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))
    run.add_argument(
        "--workers", type=int, default=1,
        help="Stage-2 reroute threads (1 = sequential, byte-identical)",
    )
    run.add_argument(
        "--stage3-workers", type=int, default=1,
        help="Stage-3 buffering threads (output identical at any count)",
    )
    run.add_argument(
        "--stage3-solver", default="dp",
        help="Stage-3 buffering strategy (dp, single_sink, greedy, "
        "van_ginneken, multi_type)",
    )
    run.add_argument(
        "--buffer-library", default="single",
        help="buffer library the multi_type strategy sizes over "
        "(single, tech)",
    )
    run.add_argument("--maps", action="store_true", help="print ASCII maps")
    run.add_argument(
        "--diagnose", action="store_true",
        help="classify why any failing nets miss the length rule",
    )
    run.add_argument("--stage4-iterations", type=int, default=2)
    run.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL trace (spans, metrics, per-net events) to PATH",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print the tracer summary (span tree, counters, event totals)",
    )

    sub.add_parser("table1", help="print Table I")
    for name in ("table2", "table3", "table4", "table5"):
        p = sub.add_parser(name, help=f"regenerate {name} for one circuit")
        p.add_argument("circuit", choices=sorted(BENCHMARK_SPECS))

    list_cmd = sub.add_parser("list", help="list benchmarks")
    list_cmd.add_argument(
        "--json", action="store_true",
        help="emit a JSON array instead of the text table",
    )

    serve = sub.add_parser(
        "serve", help="run the incremental planning service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--service-workers", type=int, default=2,
        help="concurrent planning jobs",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="queued-job cap before submits shed",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0,
        help="per-job wall-clock budget in seconds",
    )
    serve.add_argument(
        "--verify-fraction", type=float, default=0.05,
        help="fraction of incremental jobs verified against a full re-plan",
    )
    serve.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="restore baselines from DIR on start; checkpoint on shutdown",
    )
    serve.add_argument(
        "--max-request-bytes", type=int, default=None, metavar="N",
        help="reject request lines longer than N bytes (default 1 MiB)",
    )
    serve.add_argument(
        "--fleet-workers", type=int, default=0, metavar="N",
        help="run the sharded multi-process fleet with N planner "
        "processes (0 = the single-process scheduler; signatures are "
        "identical either way)",
    )
    serve.add_argument(
        "--shutdown-deadline", type=float, default=30.0, metavar="S",
        help="seconds to drain in-flight jobs on SIGTERM/SIGINT before "
        "checkpointing and exiting",
    )
    serve.add_argument(
        "--aging-threshold", type=float, default=30.0, metavar="S",
        help="fleet: promote jobs queued longer than S seconds to "
        "absolute priority",
    )
    serve.add_argument(
        "--preempt-after", type=float, default=0.2, metavar="S",
        help="fleet: a full plan running longer than S seconds may be "
        "preempted by a waiting incremental job",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a seeded open-loop load trace through an in-process "
        "service and print the throughput/latency report",
    )
    loadgen.add_argument("--tenants", type=int, default=4)
    loadgen.add_argument("--jobs", type=int, default=60)
    loadgen.add_argument(
        "--rate", type=float, default=20.0,
        help="open-loop arrival rate in jobs/sec across all tenants",
    )
    loadgen.add_argument("--grid", type=int, default=16)
    loadgen.add_argument("--nets", type=int, default=120)
    loadgen.add_argument("--total-sites", type=int, default=600)
    loadgen.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fleet workers (0 = the single-process scheduler)",
    )
    loadgen.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of the text summary",
    )

    explore = sub.add_parser(
        "explore",
        help="sweep resource budgets and report the Pareto frontier",
    )
    explore.add_argument(
        "--dim", action="append", required=True, metavar="SPEC",
        help="one sweep dimension, repeatable. SPEC is NAME=VALUES where "
        "NAME is total_sites, capacity, length_limit, num_nets, "
        "macroN (values XxY), or region_sites@X0:Y0:X1:Y1 (inclusive "
        "tile rectangle); VALUES is a,b,c or LO:HI[:STEP]",
    )
    explore.add_argument("--grid", type=int, default=16,
                         help="scenario grid size (tiles per side)")
    explore.add_argument("--nets", type=int, default=120)
    explore.add_argument("--capacity", type=int, default=8)
    explore.add_argument("--length-limit", type=int, default=5)
    explore.add_argument("--total-sites", type=int, default=600)
    explore.add_argument("--site-seed", type=int, default=0)
    explore.add_argument(
        "--base-macro", action="append", default=[], metavar="X,Y,W,H",
        help="add a macro to the base scenario (repeatable)",
    )
    explore.add_argument(
        "--sampler", choices=("grid", "random", "bisect"), default="grid",
    )
    explore.add_argument(
        "--samples", type=int, default=32,
        help="sample count for the random (Latin-hypercube) sampler",
    )
    explore.add_argument(
        "--sample-seed", type=int, default=0,
        help="seed for the random sampler's strata permutation",
    )
    explore.add_argument(
        "--bisect-dim", metavar="LABEL",
        help="dimension label the bisect sampler refines",
    )
    explore.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = in-process; results identical)",
    )
    explore.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-scenario wall-clock budget (pool mode)",
    )
    explore.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for crashed/timed-out scenarios",
    )
    explore.add_argument(
        "--no-reuse", action="store_true",
        help="always plan from scratch (skip incremental baseline replay)",
    )
    explore.add_argument(
        "--max-scenarios", type=int, default=None, metavar="N",
        help="evaluate at most N scenarios this invocation (resume later)",
    )
    explore.add_argument(
        "--store", metavar="PATH",
        help="JSONL result store; reuse to resume a killed sweep",
    )
    explore.add_argument(
        "--json", action="store_true",
        help="print the canonical frontier report JSON instead of the table",
    )
    explore.add_argument(
        "--sensitivity", action="store_true",
        help="print one-at-a-time sensitivity per dimension",
    )
    explore.add_argument(
        "--svg", metavar="PATH",
        help="write a budget-vs-outcome scatter SVG",
    )
    explore.add_argument("--svg-x", default="site_budget",
                         help="scatter x metric (default site_budget)")
    explore.add_argument("--svg-y", default="unassigned_nets",
                         help="scatter y metric (default unassigned_nets)")
    explore.add_argument(
        "--metrics", action="store_true",
        help="print the explore.* observability counters",
    )
    explore.add_argument(
        "--bound", default="", metavar="MODE",
        help="run the certified lower-bound oracle per scenario and "
        "report optimality_gap / certified_infeasible (modes: gk)",
    )
    explore.add_argument(
        "--bound-epsilon", type=float, default=0.25,
        help="Garg-Konemann epsilon for the bound oracle",
    )
    explore.add_argument(
        "--triage", default="off",
        choices=("off", "certified", "estimate"),
        help="routability triage gate: prune scenarios the millisecond "
        "estimator certifies (certified) or estimates (estimate) "
        "infeasible before planning them",
    )

    bound = sub.add_parser(
        "bound",
        help="certified buffered-MCF lower bound for one scenario",
    )
    bound.add_argument("--grid", type=int, default=16,
                       help="scenario grid size (tiles per side)")
    bound.add_argument("--nets", type=int, default=120)
    bound.add_argument("--capacity", type=int, default=8)
    bound.add_argument("--length-limit", type=int, default=5)
    bound.add_argument("--total-sites", type=int, default=600)
    bound.add_argument("--site-seed", type=int, default=0)
    bound.add_argument(
        "--mode", default="gk", help="oracle mode (see repro --version)"
    )
    bound.add_argument(
        "--epsilon", type=float, default=0.25,
        help="Garg-Konemann length-update epsilon",
    )
    bound.add_argument(
        "--iterations", type=int, default=4,
        help="length-update rounds",
    )
    bound.add_argument(
        "--refine-iters", type=int, default=4,
        help="golden-section pricing evaluations refining theta around "
        "the best grid point (0 disables refinement)",
    )
    bound.add_argument(
        "--triage", action="store_true",
        help="run the millisecond routability triage first; certified "
        "infeasible scenarios skip the pricing escalation entirely",
    )
    bound.add_argument(
        "--compare", action="store_true",
        help="also plan the scenario with RABID and report the "
        "optimality gap against the certified bound",
    )
    bound.add_argument(
        "--round", action="store_true", dest="round_plan",
        help="round the fractional solution into an integral plan "
        "(seeded, deterministic) and report its cost/overflow",
    )
    bound.add_argument(
        "--cert", metavar="PATH",
        help="write the dual certificate JSON to PATH",
    )
    bound.add_argument(
        "--verify", action="store_true",
        help="independently re-verify the certificate (exit 1 on "
        "failure)",
    )
    bound.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of the text summary",
    )

    submit = sub.add_parser(
        "submit", help="submit a job (JSON file or stdin) to a service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument(
        "job", nargs="?", default="-",
        help="path to a job JSON file, or - for stdin (default)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return after enqueueing instead of waiting for the result",
    )

    workload = sub.add_parser(
        "workload",
        help="named workload tiers: list, describe, or stream an ECO trace",
    )
    workload.add_argument(
        "action", choices=("list", "describe", "run"),
        help="list the registry, print one tier card (with its triage "
        "verdict), or replay a streaming ECO trace against the tier",
    )
    workload.add_argument(
        "--name", metavar="TIER",
        help="workload tier name (required for describe/run)",
    )
    workload.add_argument(
        "--source", choices=("smoke", "ladder", "table1"), default=None,
        help="restrict `list` to one registry source",
    )
    workload.add_argument(
        "--trace-events", type=int, default=100,
        help="streaming trace length (run)",
    )
    workload.add_argument(
        "--trace-seed", type=int, default=0,
        help="ECO event-stream seed (run)",
    )
    workload.add_argument(
        "--checkpoint-every", type=int, default=25,
        help="full re-plan divergence checkpoint period; 0 disables",
    )
    workload.add_argument(
        "--workers", type=int, default=1,
        help="1 = in-process scheduler, >1 = process fleet "
        "(signature maps are identical either way)",
    )
    workload.add_argument(
        "--job-timeout", type=float, default=600.0,
        help="per-job wall-clock budget handed to the service",
    )
    workload.add_argument(
        "--triage", action="store_true",
        help="triage the tier before replaying; a certified-infeasible "
        "verdict aborts the run (exit 1)",
    )
    workload.add_argument(
        "--json", action="store_true",
        help="print the full TraceReport JSON instead of the summary",
    )
    workload.add_argument(
        "--out", metavar="PATH",
        help="also write the full TraceReport JSON to PATH",
    )
    return parser


def _check_worker_flags(args) -> None:
    """Validate the worker-knob interplay with the machine.

    Values below 1 are rejected (exit 2); values beyond ``os.cpu_count()``
    are *clamped* to it with a clear warning on stderr — oversubscribing
    threads past the core count only adds contention, and results are
    identical at any worker count, so degrading to the machine's
    capacity is always safe. Library callers are unaffected — only the
    CLI flags are validated.
    """
    cpus = os.cpu_count() or 1
    for flag, attr in (("--workers", "workers"),
                       ("--stage3-workers", "stage3_workers")):
        value = getattr(args, attr, 1)
        if value < 1:
            # Leave sub-1 values to RabidConfig's own validation so the
            # error message stays the library's.
            continue
        if value > cpus:
            print(
                f"warning: clamping {flag}={value} to {cpus} "
                f"(this machine has {cpus} CPU core(s))",
                file=sys.stderr,
            )
            setattr(args, attr, cpus)


def _parse_sweep_values(text: str, pairs: bool = False) -> list:
    """``a,b,c`` / ``LO:HI[:STEP]`` value lists (``XxY`` pairs for macros)."""
    values: list = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            if pairs:
                x, _, y = part.partition("x")
                values.append((int(x), int(y)))
            elif ":" in part:
                bits = [int(b) for b in part.split(":")]
                if len(bits) not in (2, 3):
                    raise ValueError(part)
                step = bits[2] if len(bits) == 3 else 1
                values.extend(range(bits[0], bits[1] + 1, step))
            else:
                values.append(int(part))
        except ValueError as exc:
            raise ConfigurationError(
                f"cannot parse sweep value {part!r}"
            ) from exc
    if not values:
        raise ConfigurationError(f"empty sweep value list {text!r}")
    return values


def _parse_dim_spec(spec: str):
    """One ``--dim`` argument -> a :class:`repro.explore.Dimension`."""
    import re

    from repro.explore import Dimension

    name, sep, values_text = spec.partition("=")
    if not sep:
        raise ConfigurationError(
            f"--dim {spec!r} must look like NAME=VALUES"
        )
    name = name.strip()
    macro = re.fullmatch(r"macro(\d+)", name)
    if macro:
        return Dimension(
            "macro_origin",
            _parse_sweep_values(values_text, pairs=True),
            index=int(macro.group(1)),
        )
    region = re.fullmatch(r"region_sites@(\d+):(\d+):(\d+):(\d+)", name)
    if region:
        x0, y0, x1, y1 = (int(g) for g in region.groups())
        if x1 < x0 or y1 < y0:
            raise ConfigurationError(
                f"--dim {spec!r}: empty region rectangle"
            )
        tiles = tuple(
            (x, y)
            for x in range(x0, x1 + 1)
            for y in range(y0, y1 + 1)
        )
        return Dimension(
            "region_sites", _parse_sweep_values(values_text), tiles=tiles
        )
    if name in ("total_sites", "capacity", "length_limit", "num_nets"):
        return Dimension(name, _parse_sweep_values(values_text))
    if name == "buffer_library":
        values = tuple(
            v.strip() for v in values_text.split(",") if v.strip()
        )
        return Dimension("buffer_library", values)
    raise ConfigurationError(
        f"unknown sweep dimension {name!r}; expected total_sites, "
        "capacity, length_limit, num_nets, buffer_library, macroN, or "
        "region_sites@X0:Y0:X1:Y1"
    )


def _cmd_explore(args) -> int:
    from repro.explore import (
        ParameterSpace,
        ResultStore,
        SweepOptions,
        explore_space,
        frontier_report,
        render_frontier_table,
        render_sensitivity,
        report_bytes,
        sensitivity_report,
    )
    from repro.service.jobs import MacroSpec, ScenarioSpec

    macros = []
    for text in args.base_macro:
        try:
            x, y, w, h = (int(v) for v in text.split(","))
        except ValueError as exc:
            raise ConfigurationError(
                f"--base-macro {text!r} must be X,Y,W,H"
            ) from exc
        macros.append(MacroSpec(x, y, w, h))
    base = ScenarioSpec(
        grid=args.grid,
        num_nets=args.nets,
        capacity=args.capacity,
        seed=args.seed,
        length_limit=args.length_limit,
        total_sites=args.total_sites,
        site_seed=args.site_seed,
        macros=tuple(macros),
    )
    space = ParameterSpace(base, tuple(_parse_dim_spec(s) for s in args.dim))
    options = SweepOptions(
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        reuse_baseline=not args.no_reuse,
        max_scenarios=args.max_scenarios,
        triage=args.triage,
    )
    tracer = None
    if args.metrics:
        from repro.obs import Tracer

        tracer = Tracer()
    config = None
    if args.bound:
        config = RabidConfig(
            bound=args.bound, bound_epsilon=args.bound_epsilon
        )
    result = explore_space(
        space,
        sampler=args.sampler,
        samples=args.samples,
        seed=args.sample_seed,
        bisect_dim=args.bisect_dim,
        config=config,
        store=ResultStore(args.store),
        options=options,
        tracer=tracer,
    )
    assignments = {
        key: space.assignment(point)
        for point, key in zip(result.points, result.keys)
    }
    report = frontier_report(result.records, assignments)
    if args.json:
        sys.stdout.write(report_bytes(report).decode("utf-8"))
    else:
        print(
            f"space: {space.size} combinations, "
            f"{len(result.points)} sampled, "
            f"{len(result.records)} evaluated in {result.seconds:.2f}s"
        )
        print()
        print(render_frontier_table(report))
    if args.sensitivity:
        print("\nsensitivity (one-at-a-time):")
        print(render_sensitivity(sensitivity_report(result)))
    if result.boundaries is not None and not args.json:
        print(f"\ncheapest feasible {args.bisect_dim} per combination:")
        for combo, value in result.boundaries.items():
            label = " ".join(str(v) for v in combo) or "-"
            print(f"  {label}: {value if value is not None else 'infeasible'}")
    if args.svg:
        from repro.analysis import scatter_svg

        frontier_keys = {e["key"] for e in report["frontier"]}
        points = []
        for row in result.rows():
            if row.get("status") != "ok":
                continue
            points.append(
                {
                    **row,
                    "feasible": row["unassigned_nets"] == 0,
                    "on_frontier": row["key"] in frontier_keys,
                    "label": " ".join(
                        f"{d.label}={v}"
                        for d, v in zip(
                            space.dimensions,
                            result.points[result.keys.index(row["key"])].values,
                        )
                    ),
                }
            )
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(
                scatter_svg(
                    points, x=args.svg_x, y=args.svg_y, title="budget sweep"
                )
            )
        print(f"\nscatter ({args.svg_x} vs {args.svg_y}) -> {args.svg}")
    if tracer is not None:
        print("\ncounters:")
        for name in ("explore.scenarios", "explore.cache_hits",
                     "explore.retries", "explore.triage_pruned"):
            print(f"  {name}: {tracer.metrics.value(name)}")
    evaluated_ok = any(
        r.status == "ok" for r in result.records.values()
    )
    return 0 if evaluated_ok else 1


def _cmd_bound(args) -> int:
    """Run the lower-bound oracle on one generated scenario."""
    import json

    from repro.bounds import (
        BoundOptions,
        bound_scenario,
        round_candidates,
        save_certificate,
        verify_certificate,
    )
    from repro.service.engine import build_graph
    from repro.service.jobs import ScenarioSpec

    scenario = ScenarioSpec(
        grid=args.grid,
        num_nets=args.nets,
        capacity=args.capacity,
        seed=args.seed,
        length_limit=args.length_limit,
        total_sites=args.total_sites,
        site_seed=args.site_seed,
    )
    options = BoundOptions(
        mode=args.mode, epsilon=args.epsilon, iterations=args.iterations,
        seed=args.seed, refine_iters=args.refine_iters, triage=args.triage,
    )
    result = bound_scenario(scenario, options)
    payload = result.summary()
    if args.compare:
        from repro.bounds.gap import plan_surrogate_cost
        from repro.explore.executor import metrics_from_state
        from repro.service.engine import full_plan

        metrics = metrics_from_state(full_plan(scenario))
        plan = plan_surrogate_cost(metrics)
        payload["plan_cost"] = plan
        payload["plan_unassigned_nets"] = metrics["unassigned_nets"]
        if result.lower_bound is not None:
            payload["optimality_gap"] = round(
                (plan - result.lower_bound) / max(result.lower_bound, 1.0),
                6,
            )
    if args.round_plan:
        rounded = round_candidates(
            build_graph(scenario), result.candidates, seed=args.seed
        )
        payload["rounded"] = rounded.summary()
    certificate = result.certificate()
    if args.cert:
        save_certificate(certificate, args.cert)
        payload["certificate"] = args.cert
    verify_ok = True
    if args.verify:
        nets = scenario.nets()
        limits = scenario.limits(sorted(nets))
        report = verify_certificate(
            certificate, build_graph(scenario), nets, limits,
            window_margin=options.window_margin,
        )
        verify_ok = bool(report["ok"])
        payload["verify"] = {
            "ok": verify_ok,
            "nets_checked": report.get("nets_checked"),
            "worst_dual_violation": report.get("worst_dual_violation"),
            "derived_bound": report.get("derived_bound"),
        }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"bound[{payload['mode']}] eps={payload['epsilon']} "
            f"iters={payload['iterations']}: "
            f"lower_bound={payload['lower_bound']} "
            f"(theta={payload['theta']}, lambda={payload['lambda_lb']})"
        )
        if payload["certified_infeasible"]:
            print(
                "certified infeasible: "
                f"{payload['infeasible_reason']} "
                f"(structural nets: {len(payload['structural_nets'])})"
            )
        if "plan_cost" in payload:
            gap = payload.get("optimality_gap")
            print(
                f"plan cost {payload['plan_cost']}"
                + (f", optimality gap {gap}" if gap is not None else "")
            )
        if "rounded" in payload:
            r = payload["rounded"]
            print(
                f"rounded arm: cost {r['total_cost']}, "
                f"wire overflow {r['wire_overflow']}, "
                f"site overflow {r['site_overflow']}"
            )
        if "verify" in payload:
            v = payload["verify"]
            print(
                f"certificate verify: {'ok' if v['ok'] else 'FAILED'} "
                f"({v['nets_checked']} nets, worst dual violation "
                f"{v['worst_dual_violation']})"
            )
        if args.cert:
            print(f"certificate -> {args.cert}")
    return 0 if verify_ok else 1


def _cmd_workload(args) -> int:
    """List workload tiers, describe one, or stream an ECO trace."""
    import json

    from repro.workloads import (
        TraceOptions,
        get_workload,
        list_workloads,
        run_workload_trace,
        triage_scenario,
    )

    if args.action == "list":
        tiers = list_workloads(args.source)
        if args.json:
            print(json.dumps([t.describe() for t in tiers], indent=2))
            return 0
        for t in tiers:
            print(
                f"{t.name:16s} {t.source:6s} {t.grid:4d}x{t.grid:<4d} "
                f"{t.num_nets:6d} nets {t.total_sites:7d} sites  "
                f"{t.description}"
            )
        return 0
    if not args.name:
        raise ConfigurationError(f"workload {args.action} needs --name")
    spec = get_workload(args.name)
    if args.action == "describe":
        card = spec.describe()
        verdict = triage_scenario(spec.scenario())
        card["triage"] = verdict.as_dict()
        if args.json:
            print(json.dumps(card, indent=2, sort_keys=True))
            return 0
        for key, value in card.items():
            if key == "triage":
                continue
            print(f"{key}: {value}")
        print(
            f"triage: {verdict.verdict} "
            f"(site_pressure={verdict.site_pressure:.3f}, "
            f"cut_slack={verdict.cut_slack}, "
            f"{verdict.seconds * 1000:.1f} ms)"
        )
        return 0
    # action == "run": stream a generated ECO trace through the service.
    if args.triage:
        verdict = triage_scenario(spec.scenario())
        if verdict.certified_infeasible:
            print(
                f"triage: {args.name} certified infeasible "
                f"({verdict.infeasible_reason}); not replaying"
            )
            return 1
    options = TraceOptions(
        events=args.trace_events,
        seed=args.trace_seed,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
        job_timeout=args.job_timeout,
    )
    report = run_workload_trace(args.name, options)
    payload = report.as_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        pct = report.latency_percentiles()
        speedup = payload["steady_speedup"]
        print(
            f"workload {report.workload}: {report.events} events, "
            f"{report.workers} worker(s), seed {report.seed}"
        )
        print(
            f"  baseline: {report.nets} nets, "
            f"{report.baseline.get('buffers')} buffers, "
            f"{report.baseline.get('seconds_full', 0.0):.2f}s full plan"
        )
        print(
            f"  steady incremental speedup: "
            f"{speedup if speedup is not None else 'n/a'}x; latency "
            f"p50={pct['event_p50']:.3f}s p95={pct['event_p95']:.3f}s "
            f"p99={pct['event_p99']:.3f}s"
        )
        print(
            f"  checkpoints: {len(report.checkpoints)}, "
            f"divergences: {report.divergences}, "
            f"signature digest {report.signature_digest()[:16]}…"
        )
        print(f"  events by kind: {payload['events_by_kind']}")
        if args.out:
            print(f"  report -> {args.out}")
    return 0 if report.divergences == 0 else 1


def _cmd_serve(args) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.core import RabidConfig as _Config
    from repro.service.protocol import ProtocolServer

    if args.fleet_workers:
        from repro.service.fleet import FleetOptions, FleetPlanningService

        service = FleetPlanningService(
            config=_Config(),
            options=FleetOptions(
                workers=args.fleet_workers,
                max_queue_per_tenant=args.max_queue,
                job_timeout=args.job_timeout,
                aging_threshold=args.aging_threshold,
                preempt_after=args.preempt_after,
            ),
        )
    else:
        from repro.service.scheduler import PlanningService, SchedulerOptions

        service = PlanningService(
            config=_Config(),
            options=SchedulerOptions(
                workers=args.service_workers,
                max_queue=args.max_queue,
                job_timeout=args.job_timeout,
                verify_fraction=args.verify_fraction,
            ),
        )

    async def _serve() -> None:
        if (
            not args.fleet_workers
            and args.checkpoint_dir
            and os.path.isdir(args.checkpoint_dir)
        ):
            from repro.service.checkpoint import load_service_checkpoints

            loaded = load_service_checkpoints(args.checkpoint_dir, service)
            if loaded:
                print(f"restored baselines: {', '.join(loaded)}", flush=True)
        kwargs = dict(
            checkpoint_dir=args.checkpoint_dir,
            shutdown_deadline=args.shutdown_deadline,
        )
        if args.max_request_bytes is not None:
            kwargs["max_request_bytes"] = args.max_request_bytes
        server = ProtocolServer(service, **kwargs)
        await server.start(args.host, args.port)
        # The one line clients parse to find the port (tests, CI smoke).
        print(f"serving on {args.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, server.request_shutdown)
        await server.serve_until_shutdown()
        report = server.drain_report
        if report is not None and not report.get("drained", True):
            print(
                f"shutdown deadline hit with {report['pending']} "
                "job(s) pending",
                flush=True,
            )

    try:
        asyncio.run(_serve())
    except ReproError as exc:
        # Runtime failure (checkpoint write, worker loss past the retry
        # budget): one line, nonzero exit, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio
    import json

    from repro.service.loadgen import (
        LoadgenOptions,
        make_load_trace,
        run_load,
    )

    trace = make_load_trace(
        LoadgenOptions(
            tenants=args.tenants,
            jobs=args.jobs,
            rate=args.rate,
            seed=args.seed,
            grid=args.grid,
            num_nets=args.nets,
            total_sites=args.total_sites,
        )
    )

    async def _drive():
        if args.workers:
            from repro.service.fleet import FleetOptions, FleetPlanningService

            service = FleetPlanningService(
                options=FleetOptions(
                    workers=args.workers,
                    max_queue_per_tenant=max(64, args.jobs + args.tenants),
                )
            )
        else:
            from repro.service.scheduler import (
                PlanningService,
                SchedulerOptions,
            )

            service = PlanningService(
                options=SchedulerOptions(
                    workers=1,
                    max_queue=max(64, args.jobs + args.tenants),
                )
            )
        await service.start()
        try:
            return await run_load(service, trace)
        finally:
            await service.stop()

    report = asyncio.run(_drive())
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.jobs_measured} measured jobs over "
            f"{report.wall_seconds:.2f}s -> {report.jobs_per_sec:.2f} jobs/s "
            f"({report.jobs_shed} shed, {report.jobs_failed} failed)"
        )
        print(
            f"latency p50 {report.latency_p50 * 1e3:.1f}ms "
            f"p95 {report.latency_p95 * 1e3:.1f}ms "
            f"p99 {report.latency_p99 * 1e3:.1f}ms; "
            f"queue wait p95 {report.queue_wait_p95 * 1e3:.1f}ms"
        )
        for tenant, stats in report.per_tenant.items():
            print(
                f"  {tenant}: {int(stats['jobs'])} jobs, queue wait p95 "
                f"{stats['queue_wait_p95'] * 1e3:.1f}ms"
            )
    return 0 if report.jobs_failed == 0 else 1


def _cmd_submit(args) -> int:
    import asyncio
    import json

    from repro.service.protocol import request_over_stream

    if args.job == "-":
        payload = sys.stdin.read()
    else:
        with open(args.job, "r", encoding="utf-8") as fh:
            payload = fh.read()
    try:
        job = json.loads(payload)
    except ValueError as exc:
        raise ConfigurationError(f"job is not valid JSON: {exc}") from exc
    requests = [{"op": "submit", "job": job}]
    if not args.no_wait:
        requests.append({"op": "wait", "job_id": job.get("job_id")})
    responses = asyncio.run(
        request_over_stream(args.host, args.port, requests)
    )
    final = responses[-1]
    print(json.dumps(final, indent=2))
    return 0 if final.get("ok") else 1


def _cmd_run(args) -> int:
    if args.trace:
        # Fail before the (multi-second) plan, not at export time.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
    bench = load_benchmark(args.circuit, seed=args.seed)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=args.stage4_iterations,
        workers=args.workers,
        stage3_workers=args.stage3_workers,
        stage3_solver=args.stage3_solver,
        buffer_library=args.buffer_library,
    )
    tracer = None
    if args.trace or args.metrics:
        from repro.obs import Tracer

        tracer = Tracer()
    planner = RabidPlanner(bench.graph, bench.netlist, config, tracer=tracer)
    result = planner.run()
    headers = [
        "stage", "wire max", "wire avg", "overflows", "buf max", "buf avg",
        "#bufs", "#fails", "wirelength", "delay max", "delay avg", "CPU(s)",
    ]
    print(render_table(headers, [m.as_row() for m in result.stage_metrics]))
    if args.maps:
        print("\nwire congestion (per-tile worst edge):")
        print(wire_congestion_map(bench.graph))
        print("\nbuffer usage (X = no sites):")
        print(buffer_usage_map(bench.graph))
    if args.diagnose and result.failed_nets:
        from repro.analysis import diagnose_failures, failure_summary

        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.limit_for(n) for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        print("\nfailure diagnosis:")
        for d in diags:
            print(
                f"  {d.net_name}: {d.cause.value} "
                f"({d.violations} gate(s) over-driven, "
                f"{d.tiles_in_blocked_region} tiles in the blocked region)"
            )
        print("  summary:", failure_summary(diags))
    if tracer is not None:
        if args.metrics:
            from repro.obs import render_summary

            print("\n" + render_summary(tracer))
        if args.trace:
            lines = tracer.export_jsonl(args.trace)
            print(f"\ntrace: {lines} records -> {args.trace}")
    return 0


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")


def _dispatch(args) -> int:
    if args.seed < 0:
        raise ConfigurationError(f"seed must be >= 0, got {args.seed}")
    experiment = ExperimentConfig(seed=args.seed)
    if args.command == "list":
        caps = _capabilities()
        if args.json:
            import json

            # The leading meta row carries the engine registries
            # (routers, stage3 solvers, bound modes); benchmark rows
            # follow, all sharing the name/kind/nets/sinks shape.
            rows = [
                {
                    "name": "_capabilities",
                    "kind": "meta",
                    "nets": 0,
                    "sinks": 0,
                    **caps,
                }
            ]
            rows.extend(
                {
                    "name": name,
                    "kind": "random" if spec.is_random else "CBL",
                    "nets": spec.nets,
                    "sinks": spec.sinks,
                }
                for name, spec in sorted(BENCHMARK_SPECS.items())
            )
            print(json.dumps(rows, indent=2))
            return 0
        for name, spec in sorted(BENCHMARK_SPECS.items()):
            kind = "random" if spec.is_random else "CBL"
            print(f"{name:8s} {kind:6s} {spec.nets:5d} nets {spec.sinks:5d} sinks")
        for key, values in caps.items():
            print(f"{key}: {', '.join(values)}")
        return 0
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "bound":
        return _cmd_bound(args)
    if args.command == "run":
        _check_worker_flags(args)
        return _cmd_run(args)
    if args.command == "workload":
        _check_worker_flags(args)
        return _cmd_workload(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "table1":
        print(format_table1(run_table1(seed=args.seed)))
        return 0
    if args.command == "table2":
        print(format_table2(run_table2_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table3":
        print(format_table3(run_table3_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table4":
        print(format_table4(run_table4_circuit(args.circuit, experiment)))
        return 0
    if args.command == "table5":
        print(format_table5(run_table5_circuit(args.circuit, experiment)))
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
