"""Buffer library: the gate kinds a buffer site can realize.

A buffer *site* is reserved area; only when assigned to a net does it become
a concrete gate. The paper notes a site may realize a buffer, an inverter at
a range of power levels, or a decoupling capacitor. The planner itself only
needs one representative repeater (``default_buffer``); the library exists
so downstream flows can legalize a site to a specific gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.technology.tech import Technology


#: Named libraries ``resolve_library`` can build from a technology table.
#: ``"single"`` is the planning default: one kind, identical to the
#: technology's representative repeater, so every solver that consumes the
#: library reproduces the singleton-repeater goldens byte for byte.
#: ``"tech"`` is the three-strength non-inverting library derived from the
#: same table (BUF_X1/X2/X4), with BUF_X1 — again the exact planning
#: repeater — as the default.
LIBRARY_NAMES = ("single", "tech")


@dataclass(frozen=True)
class BufferKind:
    """One gate the technology can place on a buffer site.

    Attributes:
        name: library cell name (e.g. ``"BUF_X4"``).
        inverting: True for inverters; the planner inserts non-inverting
            repeaters, but pairs of inverters are a legal realization.
        output_res: output (pull) resistance in ohms.
        input_cap: input pin capacitance in farads.
        intrinsic_delay: gate intrinsic delay in seconds.
    """

    name: str
    inverting: bool
    output_res: float
    input_cap: float
    intrinsic_delay: float

    def __post_init__(self) -> None:
        if self.output_res <= 0 or self.input_cap <= 0:
            raise ConfigurationError(f"buffer {self.name}: RC must be positive")
        if self.intrinsic_delay < 0:
            raise ConfigurationError(f"buffer {self.name}: negative intrinsic delay")


@dataclass
class BufferLibrary:
    """A set of buffer kinds with a designated planning default."""

    kinds: List[BufferKind] = field(default_factory=list)
    default_name: str = ""

    def __post_init__(self) -> None:
        names = [k.name for k in self.kinds]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate buffer kind names in library")
        if self.kinds and not self.default_name:
            self.default_name = self.kinds[0].name
        if self.kinds and self.default_name not in names:
            raise ConfigurationError(f"default buffer {self.default_name!r} not in library")
        self._by_name: Dict[str, BufferKind] = {k.name: k for k in self.kinds}

    @property
    def default_buffer(self) -> BufferKind:
        """The repeater used for planning-stage delay estimates."""
        if not self.kinds:
            raise ConfigurationError("empty buffer library")
        return self._by_name[self.default_name]

    def get(self, name: str) -> BufferKind:
        if name not in self._by_name:
            raise ConfigurationError(f"unknown buffer kind {name!r}")
        return self._by_name[name]

    def non_inverting(self) -> List[BufferKind]:
        return [k for k in self.kinds if not k.inverting]

    @classmethod
    def from_technology(cls, tech: Technology) -> "BufferLibrary":
        """A three-strength library derived from the technology's repeater.

        Strength scaling follows the usual rule: an nx gate has output
        resistance R/n, input capacitance n*C, and roughly constant
        intrinsic delay. The 1x repeater is the planning default.
        """
        kinds = []
        for strength in (1, 2, 4):
            kinds.append(
                BufferKind(
                    name=f"BUF_X{strength}",
                    inverting=False,
                    output_res=tech.buffer_res / strength,
                    input_cap=tech.buffer_cap * strength,
                    intrinsic_delay=tech.buffer_delay,
                )
            )
            kinds.append(
                BufferKind(
                    name=f"INV_X{strength}",
                    inverting=True,
                    output_res=tech.buffer_res / strength * 0.8,
                    input_cap=tech.buffer_cap * strength * 0.6,
                    intrinsic_delay=tech.buffer_delay * 0.6,
                )
            )
        return cls(kinds=kinds, default_name="BUF_X1")


def resolve_library(name: str, tech: Technology) -> BufferLibrary:
    """Build the named buffer library from a technology table.

    Args:
        name: one of :data:`LIBRARY_NAMES`.
        tech: the process node supplying the repeater parameters.

    Returns:
        ``"single"``: a one-kind library whose only (default) kind carries
        exactly the technology's planning-repeater RC and intrinsic delay.
        ``"tech"``: the non-inverting kinds of
        :meth:`BufferLibrary.from_technology` (BUF_X1/X2/X4).

    Raises:
        ConfigurationError: unknown library name.
    """
    if name == "single":
        return BufferLibrary(
            kinds=[
                BufferKind(
                    name="BUF_X1",
                    inverting=False,
                    output_res=tech.buffer_res,
                    input_cap=tech.buffer_cap,
                    intrinsic_delay=tech.buffer_delay,
                )
            ],
            default_name="BUF_X1",
        )
    if name == "tech":
        full = BufferLibrary.from_technology(tech)
        return BufferLibrary(kinds=full.non_inverting(), default_name="BUF_X1")
    raise ConfigurationError(
        f"unknown buffer library {name!r}; expected one of {LIBRARY_NAMES}"
    )
