"""Process technology parameters and the buffer library.

The paper embeds its benchmarks in the 0.18 um technology of Cong et al.
(BBP/FR). The exact extraction constants are unpublished; ``TECH_180NM``
uses literature-typical values for 0.18 um global wiring and a mid-size
repeater. Absolute delays therefore differ from the paper, but every trend
the evaluation relies on (unbuffered delay growing ~quadratically with
length, buffering cutting delay several-fold) is preserved.
"""

from repro.technology.tech import Technology, TECH_180NM
from repro.technology.buffers import (
    LIBRARY_NAMES,
    BufferKind,
    BufferLibrary,
    resolve_library,
)

__all__ = [
    "Technology",
    "TECH_180NM",
    "BufferKind",
    "BufferLibrary",
    "LIBRARY_NAMES",
    "resolve_library",
]
