"""Wire and device parameters for a process node."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Technology:
    """Electrical parameters used by the Elmore delay model.

    Units: resistance in ohms, capacitance in farads, length in millimetres,
    delay in seconds. Helper properties convert to the picosecond figures
    printed by the experiment harness.

    Attributes:
        name: human-readable node label, e.g. ``"0.18um"``.
        wire_res_per_mm: wire resistance per mm of global wiring.
        wire_cap_per_mm: wire capacitance per mm of global wiring.
        driver_res: output resistance of a typical net driver.
        sink_cap: input capacitance of a typical sink pin.
        buffer_res: output resistance of the planning repeater.
        buffer_cap: input capacitance of the planning repeater.
        buffer_delay: intrinsic delay of the planning repeater.
        buffer_area_mm2: silicon area of one buffer site.
        wire_pitch_mm: routing pitch used to derive tile-edge capacities.
    """

    name: str
    wire_res_per_mm: float
    wire_cap_per_mm: float
    driver_res: float
    sink_cap: float
    buffer_res: float
    buffer_cap: float
    buffer_delay: float
    buffer_area_mm2: float
    wire_pitch_mm: float

    def __post_init__(self) -> None:
        positive = {
            "wire_res_per_mm": self.wire_res_per_mm,
            "wire_cap_per_mm": self.wire_cap_per_mm,
            "driver_res": self.driver_res,
            "sink_cap": self.sink_cap,
            "buffer_res": self.buffer_res,
            "buffer_cap": self.buffer_cap,
            "buffer_area_mm2": self.buffer_area_mm2,
            "wire_pitch_mm": self.wire_pitch_mm,
        }
        for field, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"Technology.{field} must be > 0, got {value}")
        if self.buffer_delay < 0:
            raise ConfigurationError("Technology.buffer_delay must be >= 0")

    def wire_resistance(self, length_mm: float) -> float:
        """Resistance of ``length_mm`` of wire."""
        return self.wire_res_per_mm * length_mm

    def wire_capacitance(self, length_mm: float) -> float:
        """Capacitance of ``length_mm`` of wire."""
        return self.wire_cap_per_mm * length_mm


#: Literature-typical 0.18 um global-wire and repeater parameters.
#: Wire: 0.075 ohm/um and 0.118 fF/um expressed per mm. Repeater: ~180 ohm
#: drive, ~23 fF input, ~30 ps intrinsic; area ~50 um x 10 um.
TECH_180NM = Technology(
    name="0.18um",
    wire_res_per_mm=75.0,
    wire_cap_per_mm=118e-15,
    driver_res=180.0,
    sink_cap=23.4e-15,
    buffer_res=180.0,
    buffer_cap=23.4e-15,
    buffer_delay=30e-12,
    buffer_area_mm2=400e-6,  # 20 um x 20 um site
    wire_pitch_mm=0.00066,  # 0.66 um global pitch
)
