"""2-D points with Manhattan metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point.

    Points are hashable and totally ordered (lexicographically by ``x`` then
    ``y``), which lets them key dictionaries and sort deterministically.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def median_with(self, a: "Point", b: "Point") -> "Point":
        """Component-wise median of ``self``, ``a`` and ``b``.

        The median point is the Steiner point that maximally merges the
        rectilinear routes from a common node toward two targets; it is the
        merge point used by greedy overlap removal (paper Fig. 4).
        """
        xs = sorted((self.x, a.x, b.x))
        ys = sorted((self.y, a.y, b.y))
        return Point(xs[1], ys[1])


def manhattan(a: Point, b: Point) -> float:
    """L1 distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)
