"""Planar geometry primitives used throughout the library.

Everything is Manhattan (rectilinear): distances are L1, shapes are
axis-aligned rectangles. Coordinates are in millimetres unless a caller
documents otherwise.
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect, bounding_box

__all__ = ["Point", "Rect", "manhattan", "bounding_box"]
