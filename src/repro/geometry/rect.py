"""Axis-aligned rectangles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ConfigurationError(
                f"degenerate rectangle: ({self.x0}, {self.y0}) .. ({self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the rectangles share interior area (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or None when the interiors are disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)


def bounding_box(points: Iterable[Point]) -> Rect:
    """Smallest rectangle containing every point.

    Raises :class:`ConfigurationError` when ``points`` is empty.
    """
    pts = list(points)
    if not pts:
        raise ConfigurationError("bounding_box of an empty point set")
    return Rect(
        min(p.x for p in pts),
        min(p.y for p in pts),
        max(p.x for p in pts),
        max(p.y for p in pts),
    )
