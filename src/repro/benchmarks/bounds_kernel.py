"""The lower-bound-oracle benchmark feeding ``BENCH_bounds.json``.

Each run takes one workload (grid / nets / site budget) and a list of
epsilon values. The RABID plan is computed once per workload; then, for
every epsilon, the Garg-Konemann oracle produces a certified lower
bound, the dual certificate is re-verified from scratch, and the
fractional columns are rounded into a concrete comparison plan. One
trajectory entry is appended per epsilon, so the recorded file shows
gap-versus-epsilon directly: tighter epsilon, more pricing work, smaller
certified gap.

The acceptance workloads are the 32x32 / 500-net scenario (the repo's
standard kernel size) and the 64x64 / 2000-net stretch; ``--fast`` runs
a 16x16 / 120-net smoke for CI. Invariants checked on every entry —
reflected in the exit code — are ``gap >= 0`` (the bound never exceeds
the plan it certifies) and ``certificate_ok`` (the saved dual lengths
re-verify against a fresh pricing pass).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.benchmarks.emit import append_trajectory_entry, load_trajectory
from repro.bounds import (
    BoundOptions,
    bound_scenario,
    plan_surrogate_cost,
    round_candidates,
    verify_certificate,
)
from repro.core.rabid import RabidConfig
from repro.explore.executor import metrics_from_state
from repro.service.engine import build_graph, full_plan
from repro.service.jobs import ScenarioSpec

#: Default location of the trajectory file, relative to the repo root.
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "BENCH_bounds.json")

#: Default gap-vs-epsilon sweep: at least two epsilon values per run.
DEFAULT_EPSILONS = (0.5, 0.25)


@dataclass(frozen=True)
class BoundsKernelResult:
    """One (workload, epsilon) measurement of the bound oracle."""

    params: Dict[str, Any]
    lower_bound: float
    unconstrained_bound: float
    plan_cost: float
    plan_unassigned_nets: int
    gap: Optional[float]
    lambda_lb: float
    certified_infeasible: bool
    theta: float
    pricing_calls: int
    seconds_bound: float
    seconds_plan: float
    rounded_cost: float
    rounded_wire_overflow: int
    certificate_ok: bool

    @property
    def invariants_ok(self) -> bool:
        """The two recorded guarantees: nonnegative gap, valid cert.

        A ``None`` gap is only acceptable when there is nothing to
        compare against — the bound certified infeasibility, or the
        plan itself left nets unassigned.
        """
        if self.gap is None:
            gap_ok = self.certified_infeasible or self.plan_unassigned_nets > 0
        else:
            gap_ok = self.gap >= 0.0
        return gap_ok and self.certificate_ok


def run_bounds_kernel(
    grid: int = 32,
    num_nets: int = 500,
    capacity: int = 8,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    iterations: int = 3,
    window_margin: int = 10,
) -> List[BoundsKernelResult]:
    """Bound one workload at each epsilon against a single RABID plan.

    The plan arm runs once (it does not depend on epsilon); its timed
    cost is recorded on every entry so gap-vs-epsilon rows stay
    self-contained. Each bound result's certificate is re-verified with
    an independent pricing pass before being declared ok.
    """
    scenario = ScenarioSpec(
        grid=grid,
        num_nets=num_nets,
        capacity=capacity,
        total_sites=total_sites,
        seed=seed,
        site_seed=site_seed,
    )
    nets = scenario.nets()
    limits = scenario.limits(sorted(nets))

    t0 = time.perf_counter()
    metrics = metrics_from_state(full_plan(scenario, RabidConfig()))
    seconds_plan = time.perf_counter() - t0
    plan_cost = plan_surrogate_cost(metrics)
    unassigned = int(metrics.get("unassigned_nets", 0))

    results: List[BoundsKernelResult] = []
    for epsilon in epsilons:
        options = BoundOptions(
            epsilon=epsilon,
            iterations=iterations,
            window_margin=window_margin,
            seed=seed,
        )
        t0 = time.perf_counter()
        bound = bound_scenario(scenario, options)
        seconds_bound = time.perf_counter() - t0

        graph = build_graph(scenario)
        verify = verify_certificate(
            bound.certificate(), graph, nets, limits,
            window_margin=window_margin,
        )
        rounded = round_candidates(graph, bound.candidates, seed=seed)

        gap: Optional[float] = None
        if not bound.certified_infeasible and unassigned == 0:
            gap = round(
                (plan_cost - bound.lower_bound)
                / max(bound.lower_bound, 1.0),
                6,
            )
        results.append(
            BoundsKernelResult(
                params={
                    "grid": grid,
                    "num_nets": num_nets,
                    "capacity": capacity,
                    "total_sites": total_sites,
                    "seed": seed,
                    "site_seed": site_seed,
                    "epsilon": epsilon,
                    "iterations": iterations,
                },
                lower_bound=round(bound.lower_bound, 6),
                unconstrained_bound=round(bound.unconstrained_bound, 6),
                plan_cost=plan_cost,
                plan_unassigned_nets=unassigned,
                gap=gap,
                lambda_lb=round(bound.lambda_lb, 6),
                certified_infeasible=bound.certified_infeasible,
                theta=bound.theta,
                pricing_calls=bound.pricing_calls,
                seconds_bound=round(seconds_bound, 4),
                seconds_plan=round(seconds_plan, 4),
                rounded_cost=rounded.total_cost,
                rounded_wire_overflow=rounded.wire_overflow,
                certificate_ok=bool(verify["ok"]),
            )
        )
    return results


# --------------------------------------------------------------------- #
# Trajectory file                                                       #
# --------------------------------------------------------------------- #


def append_bounds_entry(
    path: str,
    label: str,
    result: BoundsKernelResult,
    extra: Optional[dict] = None,
) -> dict:
    """Record one (workload, epsilon) row; same params replace in place.

    The emit layer keys worker-less entries by label alone, so the
    epsilon is folded into the stored label — one run with several
    epsilon values records several rows instead of overwriting one.
    """
    return append_trajectory_entry(
        path,
        f"{label}-eps{result.params['epsilon']}",
        result.params,
        {
            "lower_bound": result.lower_bound,
            "unconstrained_bound": result.unconstrained_bound,
            "plan_cost": result.plan_cost,
            "plan_unassigned_nets": result.plan_unassigned_nets,
            "gap": result.gap,
            "lambda_lb": result.lambda_lb,
            "certified_infeasible": result.certified_infeasible,
            "theta": result.theta,
            "pricing_calls": result.pricing_calls,
            "seconds_bound": result.seconds_bound,
            "seconds_plan": result.seconds_plan,
            "rounded_cost": result.rounded_cost,
            "rounded_wire_overflow": result.rounded_wire_overflow,
            "certificate_ok": result.certificate_ok,
        },
        extra=extra,
    )


def load_bounds_trajectory(path: str) -> dict:
    return load_trajectory(path)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks.bounds_kernel",
        description="Run the lower-bound oracle at several epsilon values "
        "and append gap-vs-epsilon rows to the BENCH_bounds.json "
        "trajectory.",
    )
    parser.add_argument("--label", required=True, help="entry label")
    parser.add_argument("--out", default=DEFAULT_TRAJECTORY)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--grid", type=int, default=32)
    parser.add_argument("--nets", type=int, default=500)
    parser.add_argument("--capacity", type=int, default=8)
    parser.add_argument("--total-sites", type=int, default=2500)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument(
        "--epsilon",
        type=float,
        action="append",
        default=None,
        metavar="EPS",
        help="epsilon value (repeatable; default 0.5 and 0.25)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="16x16 / 120-net smoke workload for CI",
    )
    args = parser.parse_args(argv)
    kwargs: Dict[str, Any] = dict(
        grid=args.grid,
        num_nets=args.nets,
        capacity=args.capacity,
        total_sites=args.total_sites,
        seed=args.seed,
        site_seed=args.seed,
        epsilons=tuple(args.epsilon) if args.epsilon else DEFAULT_EPSILONS,
        iterations=args.iterations,
    )
    if args.fast:
        kwargs.update(grid=16, num_nets=120, total_sites=1000, iterations=2)
    results = run_bounds_kernel(**kwargs)
    ok = True
    for result in results:
        entry = append_bounds_entry(args.out, args.label, result)
        print(json.dumps(entry, indent=2))
        ok = ok and result.invariants_ok
        print(
            f"eps={result.params['epsilon']}: lower_bound="
            f"{result.lower_bound} plan_cost={result.plan_cost} "
            f"gap={result.gap} certificate_ok={result.certificate_ok} "
            f"({result.seconds_bound:.2f}s bound, "
            f"{result.seconds_plan:.2f}s plan)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
