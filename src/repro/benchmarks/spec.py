"""Benchmark statistics — the paper's Table I, verbatim.

``grid`` is written exactly as the paper prints it (``nx x ny``); the paper
chose 30 tiles on the chip's shorter side and derived the longer side so
tiles are roughly square. Die dimensions follow from grid size and tile
area. ``default_wire_capacity`` is our calibration (see DESIGN.md §2): the
paper never reports ``W(e)``, so capacities were chosen to land Stage-1
average congestion near the paper's reported values.

``site_variants`` are the small/medium/large buffer-site budgets of
Table III; ``grid_variants`` the tilings of Table IV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published statistics of one benchmark circuit."""

    name: str
    cells: int
    nets: int
    pads: int
    sinks: int
    grid: Tuple[int, int]
    tile_area_mm2: float
    length_limit: int
    buffer_sites: int
    chip_area_pct: float
    is_random: bool = False
    default_wire_capacity: int = 10
    site_variants: Tuple[int, ...] = ()
    grid_variants: Tuple[Tuple[int, int], ...] = ()

    @property
    def tile_side_mm(self) -> float:
        return math.sqrt(self.tile_area_mm2)

    @property
    def die_width_mm(self) -> float:
        return self.grid[0] * self.tile_side_mm

    @property
    def die_height_mm(self) -> float:
        return self.grid[1] * self.tile_side_mm

    def scaled_wire_capacity(self, grid: Tuple[int, int]) -> int:
        """Capacity for a non-default tiling, preserving tracks per mm.

        Halving the tile size halves each boundary's track count; capacity
        scales with the tile side, i.e., inversely with the tile count.
        """
        scale = ((self.grid[0] / grid[0]) + (self.grid[1] / grid[1])) / 2
        return max(1, round(self.default_wire_capacity * scale))


def _spec(*args, **kwargs) -> BenchmarkSpec:
    return BenchmarkSpec(*args, **kwargs)


#: The six CBL (MCNC) circuits of Table I.
CBL_CIRCUITS: List[str] = ["apte", "xerox", "hp", "ami33", "ami49", "playout"]

#: The four randomly generated circuits of Table I.
RANDOM_CIRCUITS: List[str] = ["ac3", "xc5", "hc7", "a9c3"]

BENCHMARK_SPECS: Dict[str, BenchmarkSpec] = {
    "apte": _spec(
        "apte", 9, 77, 73, 141, (30, 33), 0.36, 6, 1200, 0.13,
        default_wire_capacity=8,
        site_variants=(280, 700, 3200),
        grid_variants=((10, 11), (20, 22), (30, 33), (40, 44), (50, 55)),
    ),
    "xerox": _spec(
        "xerox", 10, 171, 2, 390, (30, 30), 0.35, 5, 3000, 0.38,
        default_wire_capacity=17,
        site_variants=(600, 1300, 3000),
    ),
    "hp": _spec(
        "hp", 11, 68, 45, 187, (30, 30), 0.42, 6, 2350, 0.25,
        default_wire_capacity=4,
        site_variants=(300, 600, 2350),
    ),
    "ami33": _spec(
        "ami33", 33, 112, 43, 324, (33, 30), 0.46, 5, 2750, 0.24,
        default_wire_capacity=7,
        site_variants=(500, 850, 2750),
    ),
    "ami49": _spec(
        "ami49", 49, 368, 22, 493, (30, 30), 0.67, 5, 11450, 0.75,
        default_wire_capacity=11,
        site_variants=(850, 1650, 11450),
        grid_variants=((10, 10), (20, 20), (30, 30), (40, 40), (50, 50)),
    ),
    "playout": _spec(
        "playout", 62, 1294, 192, 1663, (33, 30), 0.75, 6, 27550, 1.47,
        default_wire_capacity=58,
        site_variants=(3250, 6250, 27550),
        grid_variants=((11, 10), (22, 20), (33, 30), (44, 40), (55, 50)),
    ),
    "ac3": _spec(
        "ac3", 27, 200, 75, 409, (30, 30), 0.49, 6, 3550, 0.32,
        is_random=True, default_wire_capacity=12,
    ),
    "xc5": _spec(
        "xc5", 50, 975, 2, 2149, (30, 30), 0.54, 6, 13550, 1.11,
        is_random=True, default_wire_capacity=48,
    ),
    "hc7": _spec(
        "hc7", 77, 430, 51, 1318, (30, 30), 1.04, 5, 7780, 0.33,
        is_random=True, default_wire_capacity=23,
    ),
    "a9c3": _spec(
        "a9c3", 147, 1148, 22, 1526, (30, 30), 1.08, 5, 12780, 0.52,
        is_random=True, default_wire_capacity=32,
    ),
}
