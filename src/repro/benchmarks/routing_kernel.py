"""The Stage-2 routing-kernel micro-benchmark and its recorded trajectory.

The scenario is the ISSUE's 32x32 / 500-net workload: a uniform grid with
mostly-local multi-sink nets, routed once with the strict Eq. (1) cost and
then run through the full Nair rip-up-and-reroute loop. It exercises
exactly the wavefront/congestion-cost path that dominates RABID's runtime,
without the Stage-3/4 buffering machinery, so before/after numbers isolate
the routing kernel.

Results accumulate in ``benchmarks/BENCH_routing.json`` — a small
trajectory file whose entries each record one measured configuration
(label, timings, route signature). The first entry is the baseline; later
entries carry ``speedup_vs_baseline``. ``python -m repro.benchmarks.routing_kernel``
appends an entry from the command line (CI uses ``--fast``).

The route *signature* (a SHA-256 over every net's canonical edge list) is
how the golden test pins down "identical routed trees": any change to the
router that alters even one edge of one net changes the signature.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry import Rect
from repro.routing.maze import route_net_on_tiles
from repro.routing.ripup import RipupOptions, ripup_and_reroute
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph
from repro.tilegraph.congestion import wire_congestion_stats

from repro.benchmarks.emit import (  # noqa: F401  (re-exported API)
    TRAJECTORY_SCHEMA,
    SpeedupGateError,
    append_trajectory_entry,
    load_trajectory,
)

#: Default location of the trajectory file, relative to the repo root.
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "BENCH_routing.json")


@dataclass
class RoutingScenario:
    """A reproducible routing workload: a graph plus pin sets per net."""

    graph: TileGraph
    #: net name -> (source tile, sink tiles); iteration order == net order.
    nets: Dict[str, Tuple[Tuple[int, int], List[Tuple[int, int]]]]
    grid: int
    capacity: int
    seed: int

    @property
    def order(self) -> List[str]:
        return list(self.nets)


def make_routing_scenario(
    grid: int = 32,
    num_nets: int = 500,
    capacity: int = 8,
    seed: int = 0,
    max_sinks: int = 4,
    span: int = 8,
) -> RoutingScenario:
    """Build the benchmark instance deterministically from ``seed``.

    Nets are local: each net's sinks lie within ``span`` tiles of its
    source (plus a handful of chip-crossing nets every 25th net), which
    matches placed-netlist locality and keeps maze windows meaningful.
    """
    rng = np.random.default_rng(seed)
    graph = TileGraph(
        Rect(0.0, 0.0, float(grid), float(grid)),
        grid,
        grid,
        CapacityModel.uniform(capacity),
    )
    nets: Dict[str, Tuple[Tuple[int, int], List[Tuple[int, int]]]] = {}
    width = len(str(num_nets - 1))
    for i in range(num_nets):
        sx, sy = (int(v) for v in rng.integers(0, grid, size=2))
        k = int(rng.integers(1, max_sinks + 1))
        if i % 25 == 0:
            # A chip-crossing net: sinks anywhere on the die.
            offsets = rng.integers(0, grid, size=(k, 2))
            sinks = [(int(x), int(y)) for x, y in offsets]
        else:
            offsets = rng.integers(-span, span + 1, size=(k, 2))
            sinks = [
                (
                    min(grid - 1, max(0, sx + int(dx))),
                    min(grid - 1, max(0, sy + int(dy))),
                )
                for dx, dy in offsets
            ]
        nets[f"net{i:0{width}d}"] = ((sx, sy), sinks)
    return RoutingScenario(graph=graph, nets=nets, grid=grid, capacity=capacity, seed=seed)


@dataclass
class KernelResult:
    """One timed run of the routing kernel."""

    seconds_initial: float
    seconds_ripup: float
    passes: int
    overflow: int
    wirelength_tiles: int
    signature: str
    routes: Dict[str, RouteTree] = field(repr=False, default_factory=dict)

    @property
    def seconds_total(self) -> float:
        return self.seconds_initial + self.seconds_ripup


def routes_signature(routes: Dict[str, RouteTree]) -> str:
    """SHA-256 over every net's canonical (sorted, undirected) edge list."""
    canon = {
        name: sorted(
            (min(u, v), max(u, v)) for u, v in routes[name].edges()
        )
        for name in sorted(routes)
    }
    payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def routes_as_json(routes: Dict[str, RouteTree]) -> Dict[str, List[List[List[int]]]]:
    """Canonical JSON-able edges per net (for golden files)."""
    return {
        name: [
            [list(min(u, v)), list(max(u, v))]
            for u, v in sorted(
                (min(u, v), max(u, v)) for u, v in routes[name].edges()
            )
        ]
        for name in sorted(routes)
    }


def run_routing_kernel(
    scenario: RoutingScenario,
    passes: int = 2,
    radius_weight: float = 0.4,
    window_margin: int = 6,
    workers: int = 1,
    backend: str = "pool",
    tracer=None,
    pool=None,
) -> KernelResult:
    """Route every net, then rip-up/reroute for ``passes`` full passes."""
    graph = scenario.graph
    routes: Dict[str, RouteTree] = {}
    start = time.perf_counter()
    for name, (source, sinks) in scenario.nets.items():
        tree = route_net_on_tiles(
            graph,
            source,
            sinks,
            radius_weight=radius_weight,
            net_name=name,
            window_margin=window_margin,
            tracer=tracer,
        )
        tree.add_usage(graph)
        routes[name] = tree
    mid = time.perf_counter()
    option_kwargs = dict(
        max_iterations=passes,
        radius_weight=radius_weight,
        window_margin=window_margin,
    )
    # ``workers`` arrived with the flat kernel and ``backend`` with the
    # shared-memory pool; stay runnable on the pre-flat code so the
    # baseline entry can be recorded from it.
    known = getattr(RipupOptions, "__dataclass_fields__", {})
    if workers != 1 or "workers" in known:
        option_kwargs["workers"] = workers
    if "backend" in known:
        option_kwargs["backend"] = backend
    options = RipupOptions(**option_kwargs)
    executed = ripup_and_reroute(
        graph, routes, scenario.order, options, tracer=tracer, pool=pool
    )
    end = time.perf_counter()
    return KernelResult(
        seconds_initial=mid - start,
        seconds_ripup=end - mid,
        passes=executed,
        overflow=wire_congestion_stats(graph).overflow,
        wirelength_tiles=sum(t.wirelength_tiles() for t in routes.values()),
        signature=routes_signature(routes),
        routes=routes,
    )


def run_best_of(
    repetitions: int,
    workers: int = 1,
    backend: str = "pool",
    tracer=None,
    **scenario_kwargs,
) -> Tuple[RoutingScenario, KernelResult]:
    """Fastest of ``repetitions`` fresh runs, with the GC paused.

    The kernel is a half-second single shot, so one run's scheduler noise
    or a mid-run garbage collection can swing the measured ratio by 20%;
    best-of-N with collection deferred to between runs (the same policy
    ``timeit`` uses) is the recorded methodology for every trajectory
    entry. Routes are deterministic, so every repetition yields the same
    trees — only the clock differs.
    """
    import gc

    best: Optional[Tuple[RoutingScenario, KernelResult]] = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repetitions)):
            scenario = make_routing_scenario(**scenario_kwargs)
            result = run_routing_kernel(
                scenario, workers=workers, backend=backend, tracer=tracer
            )
            if best is None or result.seconds_total < best[1].seconds_total:
                best = (scenario, result)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best


# --------------------------------------------------------------------- #
# Trajectory file                                                       #
# --------------------------------------------------------------------- #


def append_entry(
    path: str,
    label: str,
    result: KernelResult,
    scenario: RoutingScenario,
    workers: int = 1,
    extra: Optional[dict] = None,
    min_speedup_vs_workers1: Optional[float] = None,
) -> dict:
    """Append one measured entry; computes speedup vs the first entry.

    Speedups are only comparable between entries with the same scenario
    parameters; entries record them so a reader can check. Re-running with
    a label already in the trajectory *replaces* that entry in place, so
    benchmark reruns refresh their numbers instead of growing the file.
    ``min_speedup_vs_workers1`` arms the emit-layer speedup gate (see
    :func:`repro.benchmarks.emit.append_trajectory_entry`).
    """
    params = {
        "grid": scenario.grid,
        "num_nets": len(scenario.nets),
        "capacity": scenario.capacity,
        "seed": scenario.seed,
    }
    return append_trajectory_entry(
        path,
        label,
        params,
        {
            "seconds_initial": round(result.seconds_initial, 4),
            "seconds_ripup": round(result.seconds_ripup, 4),
            "seconds_total": round(result.seconds_total, 4),
            "passes": result.passes,
            "overflow": result.overflow,
            "wirelength_tiles": result.wirelength_tiles,
            "signature": result.signature,
        },
        workers=workers,
        speedup_from="seconds_total",
        extra=extra,
        min_speedup_vs_workers1=min_speedup_vs_workers1,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks.routing_kernel",
        description="Run the Stage-2 routing kernel benchmark and append "
        "the result to the BENCH_routing.json trajectory.",
    )
    parser.add_argument("--label", required=True, help="entry label")
    parser.add_argument("--out", default=DEFAULT_TRAJECTORY)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend", choices=("pool", "threads"), default="pool",
        help="parallel engine for --workers > 1",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="small instance (16x16, 120 nets) for CI smoke runs",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="record the fastest of N runs (default 3)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail if a --workers > 1 entry is below this speedup over "
        "the workers=1 baseline (armed only when the machine has that "
        "many cores)",
    )
    args = parser.parse_args(argv)
    kwargs = dict(seed=args.seed)
    if args.fast:
        kwargs.update(grid=16, num_nets=120)
    scenario, result = run_best_of(
        args.repeat, workers=args.workers, backend=args.backend, **kwargs
    )
    entry = append_entry(
        args.out, args.label, result, scenario, workers=args.workers,
        extra={"backend": args.backend},
        min_speedup_vs_workers1=args.min_speedup,
    )
    print(json.dumps(entry, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
