"""Convenience loading of named benchmarks."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.benchmarks.generator import BenchmarkInstance, generate_benchmark
from repro.benchmarks.spec import BENCHMARK_SPECS
from repro.errors import ConfigurationError


def load_benchmark(
    name: str,
    seed: int = 0,
    grid: Optional[Tuple[int, int]] = None,
    total_sites: Optional[int] = None,
    wire_capacity: Optional[int] = None,
    blocked_size: int = 9,
) -> BenchmarkInstance:
    """Load one of the paper's ten benchmarks by name.

    ``load_benchmark("apte")`` reproduces the Table I configuration;
    ``grid`` and ``total_sites`` override for the Table III/IV sweeps.

    Raises:
        ConfigurationError: for an unknown benchmark name.
    """
    if name not in BENCHMARK_SPECS:
        known = ", ".join(sorted(BENCHMARK_SPECS))
        raise ConfigurationError(f"unknown benchmark {name!r}; known: {known}")
    return generate_benchmark(
        BENCHMARK_SPECS[name],
        seed=seed,
        grid=grid,
        total_sites=total_sites,
        wire_capacity=wire_capacity,
        blocked_size=blocked_size,
    )
