"""Deterministic synthesis of benchmark instances from Table I statistics.

For each spec we synthesize:

* a die sized by ``grid x tile_area``;
* ``cells`` hard blocks with lognormal areas totalling ~60% of the die,
  placed by fast shelf packing (the role the paper fills with the BBP
  code's annealing floorplanner — any legal spread-out placement serves;
  :func:`repro.floorplan.anneal_floorplan` is available when an optimized
  floorplan is wanted);
* ``pads`` I/O pads spaced around the die boundary;
* ``nets`` nets with ``sinks`` total sinks: every net gets one sink, the
  surplus is scattered multinomially so a few high-fanout nets exist; pins
  attach to block boundaries and pads uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.benchmarks.spec import BenchmarkSpec
from repro.errors import ConfigurationError
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph
from repro.tilegraph.graph import Tile
from repro.tilegraph.sites import distribute_sites_randomly
from repro.utils.rng import make_rng

#: Fraction of the die covered by macro blocks. MCNC floorplans after
#: annealing are tightly packed; a high target with uneven channel widths
#: reproduces the scarce, concentrated free space that buffer-block
#: planning depends on.
_BLOCK_UTILIZATION = 0.68


@dataclass
class BenchmarkInstance:
    """A fully materialized benchmark: geometry, netlist, tile graph."""

    spec: BenchmarkSpec
    die: Rect
    floorplan: Floorplan
    netlist: Netlist
    graph: TileGraph
    blocked_tiles: FrozenSet[Tile]
    seed: int

    @property
    def name(self) -> str:
        return self.spec.name


def _synthesize_blocks(
    spec: BenchmarkSpec, die: Rect, rng: np.random.Generator
) -> List[Block]:
    """Lognormal block areas summing to the utilization target."""
    raw = rng.lognormal(mean=0.0, sigma=0.8, size=spec.cells)
    areas = raw / raw.sum() * die.area * _BLOCK_UTILIZATION
    blocks: List[Block] = []
    for i, area in enumerate(areas):
        aspect = float(rng.uniform(0.5, 2.0))
        width = float(np.sqrt(area * aspect))
        height = float(area / width)
        # Keep individual blocks placeable within the die.
        width = min(width, die.width * 0.6)
        height = min(area / width, die.height * 0.6)
        blocks.append(Block(name=f"blk{i}", width=width, height=height))
    return blocks


def _shelf_pack(blocks: List[Block], die: Rect, rng: np.random.Generator) -> Floorplan:
    """Fast legal placement: height-sorted shelves, slack spread evenly."""
    order = sorted(blocks, key=lambda b: -b.height)
    shelves: List[List[Block]] = []
    shelf: List[Block] = []
    width_used = 0.0
    for block in order:
        if shelf and width_used + block.width > die.width:
            shelves.append(shelf)
            shelf = []
            width_used = 0.0
        shelf.append(block)
        width_used += block.width
    if shelf:
        shelves.append(shelf)

    total_shelf_height = sum(max(b.height for b in s) for s in shelves)
    if total_shelf_height > die.height:
        raise ConfigurationError("shelf packing overflows the die; lower utilization")
    # Uneven gap widths (Dirichlet split of the slack) give the floorplan a
    # realistic mix of tight abutments and a few wide channels, instead of
    # free space smeared uniformly between all blocks.
    y_slack = die.height - total_shelf_height
    y_gaps = rng.dirichlet([0.5] * (len(shelves) + 1)) * y_slack
    placed: List[Block] = []
    y = die.y0 + y_gaps[0]
    for s_idx, shelf_blocks in enumerate(shelves):
        shelf_height = max(b.height for b in shelf_blocks)
        row_width = sum(b.width for b in shelf_blocks)
        x_slack = die.width - row_width
        x_gaps = rng.dirichlet([0.5] * (len(shelf_blocks) + 1)) * x_slack
        x = die.x0 + x_gaps[0]
        for b_idx, block in enumerate(shelf_blocks):
            placed.append(
                Block(
                    name=block.name,
                    width=block.width,
                    height=block.height,
                    x=x,
                    y=y,
                    allows_buffer_sites=block.allows_buffer_sites,
                )
            )
            x += block.width + x_gaps[b_idx + 1]
        y += shelf_height + y_gaps[s_idx + 1]
    plan = Floorplan(die=die, blocks=placed)
    plan.validate()
    return plan


def _synthesize_netlist(
    spec: BenchmarkSpec,
    floorplan: Floorplan,
    rng: np.random.Generator,
    keepout: "Rect | None" = None,
) -> Netlist:
    """Nets with the published net/pad/sink counts.

    ``keepout`` is the interior of the cache-like blocked region: a real
    cache macro has pins on its boundary only, so no pin may fall strictly
    inside it (block-boundary points that would land there are resampled).
    """
    # Each pad is a single I/O pin (Table I's pad count is a pin count):
    # exactly `spec.pads` of the design's pins land on distinct pads,
    # spread randomly over all pin slots; every other pin sits on a block
    # boundary. This keeps per-tile terminal demand physical - a die
    # corner never collects dozens of net terminals.
    pads = [
        floorplan.pad_location((i + 0.5) / max(spec.pads, 1))
        for i in range(spec.pads)
    ]
    rng.shuffle(pads)
    blocks = floorplan.blocks

    total_pins = spec.nets + spec.sinks
    pad_slots = set(
        int(i) for i in rng.choice(total_pins, size=min(spec.pads, total_pins),
                                   replace=False)
    )
    slot_counter = [0]

    def random_pin(tag: str) -> Pin:
        slot = slot_counter[0]
        slot_counter[0] += 1
        if slot in pad_slots and pads:
            return Pin(name=tag, location=pads.pop(), owner="PAD")
        for _ in range(64):
            block = blocks[int(rng.integers(0, len(blocks)))]
            t = float(rng.random())
            location = block.boundary_point(t)
            if keepout is None or not keepout.contains(location):
                return Pin(name=tag, location=location, owner=block.name)
        # Pathological keepout (covers every block boundary): accept the
        # last draw rather than loop forever.
        return Pin(name=tag, location=location, owner=block.name)

    extra = spec.sinks - spec.nets
    if extra < 0:
        raise ConfigurationError(f"{spec.name}: fewer sinks than nets in spec")
    extra_per_net = rng.multinomial(extra, [1.0 / spec.nets] * spec.nets)

    netlist = Netlist()
    for i in range(spec.nets):
        source = random_pin(f"n{i}.src")
        n_sinks = 1 + int(extra_per_net[i])
        sinks = [random_pin(f"n{i}.s{k}") for k in range(n_sinks)]
        netlist.add(Net(name=f"net{i}", source=source, sinks=sinks))
    return netlist


def generate_benchmark(
    spec: BenchmarkSpec,
    seed: int = 0,
    grid: Optional[Tuple[int, int]] = None,
    total_sites: Optional[int] = None,
    wire_capacity: Optional[int] = None,
    blocked_size: int = 9,
) -> BenchmarkInstance:
    """Materialize a benchmark instance.

    Args:
        spec: the Table I statistics to honor.
        seed: master seed; the same (spec, seed, overrides) always yields
            the same instance.
        grid: tiling override (Table IV); default is the spec's grid.
        total_sites: buffer-site budget override (Table III).
        wire_capacity: per-edge capacity override; by default the spec's
            calibrated capacity, rescaled when ``grid`` deviates.
        blocked_size: side of the zero-site blocked region (paper: 9).

    Returns:
        A :class:`BenchmarkInstance` ready for :class:`RabidPlanner`.
    """
    rng = make_rng(seed)
    die = Rect(0.0, 0.0, spec.die_width_mm, spec.die_height_mm)
    blocks = _synthesize_blocks(spec, die, rng)
    # Shelf packing wastes some vertical space; shrink the blocks until the
    # pack fits (the utilization target is a synthesis knob, not a spec).
    for _ in range(20):
        try:
            floorplan = _shelf_pack(blocks, die, rng)
            break
        except ConfigurationError:
            blocks = [
                Block(
                    name=b.name,
                    width=b.width * 0.93,
                    height=b.height * 0.93,
                    allows_buffer_sites=b.allows_buffer_sites,
                )
                for b in blocks
            ]
    else:
        raise ConfigurationError(f"{spec.name}: could not pack blocks into the die")

    # The blocked cache-like region is a *physical* footprint: a square of
    # `blocked_size` default-grid tiles at a random tile-aligned position.
    # Its interior is a pin keepout (a cache macro has boundary pins only)
    # and its tiles - under whatever grid is in use - receive no sites.
    region_rect: "Rect | None" = None
    keepout: "Rect | None" = None
    if blocked_size > 0:
        side = spec.tile_side_mm
        span_x = min(blocked_size, spec.grid[0])
        span_y = min(blocked_size, spec.grid[1])
        x0 = int(rng.integers(0, spec.grid[0] - span_x + 1)) * side
        y0 = int(rng.integers(0, spec.grid[1] - span_y + 1)) * side
        region_rect = Rect(
            die.x0 + x0, die.y0 + y0,
            die.x0 + x0 + span_x * side, die.y0 + y0 + span_y * side,
        )
        if span_x > 2 and span_y > 2:
            keepout = Rect(
                region_rect.x0 + side, region_rect.y0 + side,
                region_rect.x1 - side, region_rect.y1 - side,
            )

    netlist = _synthesize_netlist(spec, floorplan, rng, keepout=keepout)

    use_grid = grid or spec.grid
    if wire_capacity is None:
        wire_capacity = (
            spec.default_wire_capacity
            if use_grid == spec.grid
            else spec.scaled_wire_capacity(use_grid)
        )
    graph = TileGraph(
        die, use_grid[0], use_grid[1], CapacityModel.uniform(wire_capacity)
    )
    blocked: FrozenSet[Tile] = frozenset()
    if region_rect is not None:
        blocked = frozenset(
            t for t in graph.tiles() if region_rect.contains(graph.tile_center(t))
        )
    distribute_sites_randomly(
        graph,
        total_sites if total_sites is not None else spec.buffer_sites,
        rng=int(rng.integers(0, 2**31 - 1)),
        blocked=blocked,
    )
    return BenchmarkInstance(
        spec=spec,
        die=die,
        floorplan=floorplan,
        netlist=netlist,
        graph=graph,
        blocked_tiles=blocked,
        seed=seed,
    )
