"""The design-space-exploration benchmark feeding ``BENCH_explore.json``.

The acceptance workload is the 64-scenario budget sweep on the
32x32 / 500-net kernel scenario: two 4x4 buffer-site regions, each swept
over 8 per-tile ``B(v)`` override values (8 x 8 = 64 combinations), all
of which are pure deltas of the sweep's base scenario. Two arms run the
identical scenario list:

* **sequential** — the sweep without the subsystem: a bare loop calling
  :func:`repro.service.full_plan` on every scenario.
* **engine** — :func:`repro.explore.run_sweep` with a worker pool and
  baseline reuse, writing a fresh store.

The speedup the trajectory records is engine vs sequential. On a
single-core machine the win comes from the incremental-replay reuse
(each delta replans a few dirty tiles instead of the whole grid), not
from parallelism — which is the point: the engine is faster *per core*,
and worker processes only add wall-clock headroom on bigger machines.
Exactness rides along: both arms must produce identical per-scenario
buffering signatures and byte-identical frontier reports.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmarks.emit import append_trajectory_entry, load_trajectory
from repro.core.rabid import RabidConfig
from repro.explore import (
    Dimension,
    ParameterSpace,
    ResultStore,
    SweepOptions,
    evaluate_scenario,
    frontier_report,
    metrics_from_state,
    report_bytes,
    run_sweep,
    scenario_key,
)
from repro.explore.store import EvalRecord
from repro.service.engine import full_plan
from repro.service.jobs import ScenarioSpec

#: Default location of the trajectory file, relative to the repo root.
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "BENCH_explore.json")


def make_explore_space(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
    values_per_dim: int = 8,
    values_second_dim: Optional[int] = None,
) -> ParameterSpace:
    """The benchmark space: two site regions x ``values_per_dim`` values.

    Each dimension overrides ``B(v)`` on a 4x4 tile region with values
    ``0 .. values_per_dim - 1`` buffer sites per tile, so every sampled
    scenario is a ``set_sites`` delta of the base — the workload the
    engine's baseline reuse is built for. The default 8 x 8 grid is the
    64-scenario acceptance sweep; ``values_second_dim`` shrinks the
    second axis (the CI smoke uses 4 x 2 = 8 scenarios).
    """
    base = ScenarioSpec(
        grid=grid,
        num_nets=num_nets,
        total_sites=total_sites,
        seed=seed,
        site_seed=site_seed,
    )
    side = max(2, min(4, grid // 4))
    ax, ay = grid // 4, grid // 4
    bx, by = (5 * grid) // 8, (5 * grid) // 8
    region_a = tuple(
        (x, y) for x in range(ax, ax + side) for y in range(ay, ay + side)
    )
    region_b = tuple(
        (x, y) for x in range(bx, bx + side) for y in range(by, by + side)
    )
    values = tuple(range(values_per_dim))
    values_b = tuple(range(
        values_second_dim if values_second_dim is not None else values_per_dim
    ))
    return ParameterSpace(
        base,
        (
            Dimension("region_sites", values, tiles=region_a),
            Dimension("region_sites", values_b, tiles=region_b),
        ),
    )


@dataclass(frozen=True)
class ExploreKernelResult:
    """One two-arm measurement of the acceptance sweep."""

    params: Dict[str, Any]
    scenarios: int
    workers: int
    seconds_sequential: float
    seconds_engine: float
    speedup: float
    via_counts: Dict[str, int]
    signatures_match: bool
    frontier_match: bool
    frontier_size: int
    feasible: int


def _sequential_sweep(
    points, config: RabidConfig
) -> Tuple[Dict[str, EvalRecord], float]:
    """The reference arm: plan every scenario from scratch, no reuse."""
    records: Dict[str, EvalRecord] = {}
    start = time.perf_counter()
    for point in points:
        key = scenario_key(point.scenario, config)
        if key in records:
            continue
        t0 = time.perf_counter()
        metrics = metrics_from_state(full_plan(point.scenario, config))
        records[key] = EvalRecord(
            key=key,
            scenario=point.scenario.to_dict(),
            status="ok",
            metrics=metrics,
            seconds=time.perf_counter() - t0,
        )
    return records, time.perf_counter() - start


def run_explore_kernel(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
    values_per_dim: int = 8,
    values_second_dim: Optional[int] = None,
    workers: int = 8,
    warmup: bool = True,
) -> ExploreKernelResult:
    """Time the sequential and engine arms on the same scenario list.

    ``warmup`` runs one untimed evaluation per arm first, so both timed
    windows measure steady-state sweep cost: the netlist memo, the
    allocator, and the engine arm's shared baseline plan are warm for
    both arms alike.
    """
    space = make_explore_space(
        grid=grid,
        num_nets=num_nets,
        total_sites=total_sites,
        seed=seed,
        site_seed=site_seed,
        values_per_dim=values_per_dim,
        values_second_dim=values_second_dim,
    )
    config = RabidConfig()
    points = space.grid()

    if warmup:
        metrics_from_state(full_plan(points[0].scenario, config))
        evaluate_scenario(points[-1].scenario, config, base=space.base)

    sequential, seconds_sequential = _sequential_sweep(points, config)

    store = ResultStore()  # fresh in-memory store: no head start
    start = time.perf_counter()
    engine = run_sweep(
        [p.scenario for p in points],
        base=space.base,
        config=config,
        store=store,
        options=SweepOptions(workers=workers),
    )
    seconds_engine = time.perf_counter() - start

    via_counts: Dict[str, int] = {}
    for record in engine.values():
        via_counts[record.via] = via_counts.get(record.via, 0) + 1
    signatures_match = set(engine) == set(sequential) and all(
        engine[k].status == "ok"
        and engine[k].metrics["signature"] == sequential[k].metrics["signature"]
        for k in sequential
    )
    report_seq = frontier_report(sequential)
    report_eng = frontier_report(engine)
    feasible = report_eng["feasible"]
    return ExploreKernelResult(
        params={
            "grid": grid,
            "num_nets": num_nets,
            "total_sites": total_sites,
            "seed": seed,
            "site_seed": site_seed,
            "values_per_dim": values_per_dim,
            "values_second_dim": (
                values_second_dim
                if values_second_dim is not None
                else values_per_dim
            ),
        },
        scenarios=len(points),
        workers=workers,
        seconds_sequential=seconds_sequential,
        seconds_engine=seconds_engine,
        speedup=(
            seconds_sequential / seconds_engine if seconds_engine > 0 else 0.0
        ),
        via_counts=via_counts,
        signatures_match=signatures_match,
        frontier_match=report_bytes(report_seq) == report_bytes(report_eng),
        frontier_size=report_eng["frontier_size"],
        feasible=feasible,
    )


# --------------------------------------------------------------------- #
# Trajectory file                                                       #
# --------------------------------------------------------------------- #


def append_explore_entry(
    path: str,
    label: str,
    result: ExploreKernelResult,
    extra: Optional[dict] = None,
) -> dict:
    """Record one measurement; re-running a label replaces it in place."""
    return append_trajectory_entry(
        path,
        label,
        result.params,
        {
            "scenarios": result.scenarios,
            "seconds_sequential": round(result.seconds_sequential, 4),
            "seconds_engine": round(result.seconds_engine, 4),
            "speedup": round(result.speedup, 2),
            "via_counts": dict(sorted(result.via_counts.items())),
            "signatures_match": result.signatures_match,
            "frontier_match": result.frontier_match,
            "frontier_size": result.frontier_size,
            "feasible": result.feasible,
        },
        workers=result.workers,
        speedup_from="seconds_engine",
        extra=extra,
    )


def load_explore_trajectory(path: str) -> dict:
    return load_trajectory(path)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks.explore_kernel",
        description="Run the 64-scenario budget-sweep benchmark and append "
        "the result to the BENCH_explore.json trajectory.",
    )
    parser.add_argument("--label", required=True, help="entry label")
    parser.add_argument("--out", default=DEFAULT_TRAJECTORY)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--fast", action="store_true",
        help="8-scenario 16x16 smoke sweep for CI",
    )
    args = parser.parse_args(argv)
    kwargs: Dict[str, Any] = dict(
        seed=args.seed, site_seed=args.seed, workers=args.workers
    )
    if args.fast:
        kwargs.update(
            grid=16, num_nets=120, total_sites=600,
            values_per_dim=4, values_second_dim=2,
        )
    result = run_explore_kernel(**kwargs)
    entry = append_explore_entry(args.out, args.label, result)
    print(json.dumps(entry, indent=2))
    print(
        f"{result.scenarios} scenarios: sequential "
        f"{result.seconds_sequential:.2f}s, engine {result.seconds_engine:.2f}s "
        f"-> {result.speedup:.2f}x (signatures_match="
        f"{result.signatures_match}, frontier_match={result.frontier_match})"
    )
    return 0 if result.signatures_match and result.frontier_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
