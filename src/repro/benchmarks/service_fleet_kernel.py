"""Fleet benchmark: sustained load through 1/2/4-worker schedulers.

Feeds ``benchmarks/BENCH_service.json`` alongside the incremental
kernel. One seeded load trace (:mod:`repro.service.loadgen` — M
tenants, Poisson arrivals, a full/macro-move/net-churn job mix) is
driven through each *arm*:

* ``workers=1`` — the single-process :class:`PlanningService`, the
  baseline the fleet must beat *and* match bit-for-bit;
* ``workers=N`` — :class:`FleetPlanningService` with N shard workers.

Each arm records measured jobs, wall seconds, sustained jobs/sec, and
p50/p95/p99 latency; the trajectory's ``min_speedup_vs_workers1`` gate
(armed only when the machine has at least N cores) enforces the
acceptance floor on the widest arm. Before anything is recorded the
kernel asserts every arm finished with byte-identical baseline
signatures — a fleet that is fast but wrong fails here, not in a
reviewer's diff.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmarks.emit import append_trajectory_entry
from repro.service import (
    FleetOptions,
    FleetPlanningService,
    LoadgenOptions,
    PlanningService,
    SchedulerOptions,
    make_load_trace,
    run_load,
)
from repro.service.loadgen import LoadReport, LoadTrace


@dataclass(frozen=True)
class FleetArmResult:
    """One scheduler arm's run of the shared trace."""

    workers: int
    report: LoadReport
    preemptions: int = 0
    rebuilds: int = 0
    fallbacks: int = 0
    aged_promotions: int = 0


def _run_classic(trace: LoadTrace, job_timeout: float) -> FleetArmResult:
    async def arm():
        service = PlanningService(
            options=SchedulerOptions(
                workers=1,
                max_queue=max(64, len(trace.events) + len(trace.baselines)),
                job_timeout=job_timeout,
            )
        )
        await service.start()
        try:
            return await run_load(service, trace)
        finally:
            await service.stop()

    return FleetArmResult(workers=1, report=asyncio.run(arm()))


def _run_fleet(
    trace: LoadTrace, workers: int, job_timeout: float
) -> FleetArmResult:
    async def arm():
        service = FleetPlanningService(
            options=FleetOptions(
                workers=workers,
                max_queue_per_tenant=max(
                    64, len(trace.events) + len(trace.baselines)
                ),
                job_timeout=job_timeout,
            )
        )
        await service.start()
        try:
            report = await run_load(service, trace)
            return report, service.stats()
        finally:
            await service.stop()

    report, stats = asyncio.run(arm())
    return FleetArmResult(
        workers=workers,
        report=report,
        preemptions=stats.get("preemptions", 0),
        rebuilds=stats.get("rebuilds", 0),
        fallbacks=stats.get("fallbacks", 0),
        aged_promotions=stats.get("aged_promotions", 0),
    )


def run_fleet_kernel(
    workers: Tuple[int, ...] = (1, 2, 4),
    tenants: int = 4,
    jobs: int = 120,
    rate: float = 60.0,
    seed: int = 0,
    grid: int = 16,
    num_nets: int = 120,
    total_sites: int = 600,
    job_timeout: float = 120.0,
) -> "Tuple[List[FleetArmResult], bool]":
    """Run every arm over the same trace.

    Returns ``(arms, signatures_match)`` where ``signatures_match`` is
    True only when every arm finished with exactly the same baseline
    signature map (and every baseline actually planned).
    """
    trace = make_load_trace(
        LoadgenOptions(
            tenants=tenants,
            jobs=jobs,
            rate=rate,
            seed=seed,
            grid=grid,
            num_nets=num_nets,
            total_sites=total_sites,
        )
    )
    arms: List[FleetArmResult] = []
    for n in workers:
        if n == 1:
            arms.append(_run_classic(trace, job_timeout))
        else:
            arms.append(_run_fleet(trace, n, job_timeout))
    reference: Optional[Dict[str, str]] = None
    match = True
    for arm in arms:
        sigs = arm.report.signatures
        if len(sigs) != len(trace.baselines):
            match = False
        if reference is None:
            reference = sigs
        elif sigs != reference:
            match = False
    return arms, match


def fleet_params(
    tenants: int, jobs: int, rate: float, seed: int,
    grid: int, num_nets: int, total_sites: int,
) -> Dict[str, Any]:
    return {
        "grid": grid,
        "num_nets": num_nets,
        "total_sites": total_sites,
        "tenants": tenants,
        "jobs": jobs,
        "rate": rate,
        "seed": seed,
    }


def append_fleet_entry(
    path: "str | Path",
    label: str,
    params: Dict[str, Any],
    arm: FleetArmResult,
    signatures_match: bool,
    min_speedup: "float | None" = None,
) -> Dict[str, Any]:
    """Record one arm; the widest arm usually carries the speedup gate."""
    report = arm.report
    return append_trajectory_entry(
        str(path),
        label,
        params,
        {
            "jobs": report.jobs_measured,
            "wall_seconds": round(report.wall_seconds, 4),
            "jobs_per_sec": round(report.jobs_per_sec, 2),
            "latency_p50": round(report.latency_p50, 4),
            "latency_p95": round(report.latency_p95, 4),
            "latency_p99": round(report.latency_p99, 4),
            "queue_wait_p95": round(report.queue_wait_p95, 4),
            "jobs_shed": report.jobs_shed,
            "jobs_failed": report.jobs_failed,
            "signatures_match": signatures_match,
            "preemptions": arm.preemptions,
            "rebuilds": arm.rebuilds,
            "fallbacks": arm.fallbacks,
        },
        workers=arm.workers,
        speedup_from="wall_seconds",
        min_speedup_vs_workers1=min_speedup,
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="fleet kernel: sustained load at 1/2/4 workers"
    )
    parser.add_argument("--fast", action="store_true",
                        help="small trace, workers {1,2} (CI smoke)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker arms, e.g. 1,2,4")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=120)
    parser.add_argument("--rate", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="speedup floor for the widest arm "
                             "(auto-skipped when cores < workers)")
    parser.add_argument("--label", default="fleet-loadgen")
    parser.add_argument("--out", default=None,
                        help="trajectory JSON to append to")
    args = parser.parse_args(argv)

    kwargs: Dict[str, Any] = dict(
        tenants=args.tenants, jobs=args.jobs, rate=args.rate, seed=args.seed,
        grid=16, num_nets=120, total_sites=600,
    )
    workers: Tuple[int, ...] = (1, 2, 4)
    if args.fast:
        workers = (1, 2)
        kwargs.update(jobs=min(args.jobs, 40), grid=16)
    if args.workers:
        workers = tuple(int(w) for w in args.workers.split(","))

    arms, match = run_fleet_kernel(workers=workers, **kwargs)
    for arm in arms:
        r = arm.report
        print(
            f"workers={arm.workers}: {r.jobs_measured} jobs over "
            f"{r.wall_seconds:.2f}s -> {r.jobs_per_sec:.2f} jobs/s, "
            f"p50 {r.latency_p50 * 1e3:.1f}ms p95 {r.latency_p95 * 1e3:.1f}ms "
            f"p99 {r.latency_p99 * 1e3:.1f}ms "
            f"(preempt={arm.preemptions} rebuild={arm.rebuilds} "
            f"fallback={arm.fallbacks})"
        )
    print(f"signatures_match={match}")
    if not match:
        return 1
    if args.out:
        params = fleet_params(
            kwargs["tenants"], kwargs["jobs"], kwargs["rate"], kwargs["seed"],
            kwargs["grid"], kwargs["num_nets"], kwargs["total_sites"],
        )
        widest = max(arm.workers for arm in arms)
        for arm in arms:
            entry = append_fleet_entry(
                args.out,
                args.label,
                params,
                arm,
                match,
                min_speedup=(
                    args.min_speedup if arm.workers == widest else None
                ),
            )
            gate = entry.get("speedup_gate")
            if gate:
                print(f"workers={arm.workers} speedup_gate: {gate}")
        print(f"recorded -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
