"""Service benchmark: incremental-vs-full speedup and job throughput.

Feeds ``benchmarks/BENCH_service.json``. Two measurements on the same
32x32 / 500-net workload the routing/buffering kernels use:

* **Incremental speedup** — plan a baseline, apply one single-macro-move
  delta, and time :func:`repro.service.incremental_replan` against a
  from-scratch :func:`repro.service.full_plan` of the evolved scenario.
  The two plans must agree on the buffering-kernel signature (exactness
  is part of the measurement, not a separate test).
* **Throughput / latency** — drive a real :class:`PlanningService`
  over a *warmed, fixed-duration window* of alternating move deltas and
  report sustained jobs/sec with p50/p95/p99 per-job latency from the
  scheduler's own records. A small in-flight pipeline keeps the worker
  saturated; warmup jobs (cache priming, allocator steady-state) are
  excluded, and the entry records both the measured job count and the
  wall seconds it spanned so the rate is auditable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.benchmarks.emit import append_trajectory_entry, load_trajectory
from repro.service import (
    DeltaSpec,
    Job,
    JobStatus,
    MacroSpec,
    PlanningService,
    ScenarioSpec,
    SchedulerOptions,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
)

SERVICE_BENCH_SCHEMA = 1


def make_service_scenario(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
) -> ScenarioSpec:
    """The benchmark scenario: one movable macro on the kernel workload."""
    macro_side = max(2, grid * 9 // 32)
    origin = max(0, grid * 10 // 32)
    return ScenarioSpec(
        grid=grid,
        num_nets=num_nets,
        total_sites=total_sites,
        seed=seed,
        site_seed=site_seed,
        macros=(MacroSpec(origin, origin, macro_side, macro_side),),
    )


def move_delta(spec: ScenarioSpec, to_corner: bool = True) -> DeltaSpec:
    """A single-macro-move delta (the acceptance workload)."""
    side = spec.macros[0].width
    far = max(0, spec.grid - side - 1)
    near = max(0, spec.grid // 8)
    target = (far, far) if to_corner else (near, near)
    return DeltaSpec((move_macro(0, *target),))


@dataclass(frozen=True)
class ServiceKernelResult:
    """One full measurement (see :func:`run_service_kernel`)."""

    params: Dict[str, Any]
    seconds_full: float
    seconds_incremental: float
    seconds_full_replan: float
    incremental_speedup: float
    signature_match: bool
    nets_total: int
    nets_resolved: int
    nets_replayed: int
    jobs: int
    wall_seconds: float
    jobs_per_sec: float
    latency_p50: float
    latency_p95: float
    latency_p99: float


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def measure_incremental_speedup(spec: ScenarioSpec, repetitions: int = 3):
    """Best-of-N incremental and full replan times for one move delta.

    Returns ``(seconds_incremental, seconds_full_replan, match, stats)``.
    Each repetition replans from a *fresh* baseline so the incremental
    arm never benefits from its own previous run.
    """
    import gc

    delta = move_delta(spec)
    evolved = apply_delta(spec, delta)
    best_incr: Optional[float] = None
    best_full: Optional[float] = None
    match = True
    last_stats = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repetitions)):
            baseline = full_plan(spec)
            t0 = time.perf_counter()
            stats = incremental_replan(baseline, delta)
            seconds_incr = time.perf_counter() - t0
            t0 = time.perf_counter()
            reference = full_plan(evolved)
            seconds_full = time.perf_counter() - t0
            match = match and stats.signature == reference.signature
            last_stats = stats
            if best_incr is None or seconds_incr < best_incr:
                best_incr = seconds_incr
            if best_full is None or seconds_full < best_full:
                best_full = seconds_full
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best_incr, best_full, match, last_stats


def measure_throughput(
    spec: ScenarioSpec,
    duration_s: float = 2.0,
    warmup: int = 3,
    pipeline: int = 8,
):
    """Sustained jobs/sec over a warmed fixed-duration window.

    A 10-job burst (the old measurement) mostly times cold caches and
    queue ramp-up; here ``warmup`` jobs run and are discarded first,
    then alternating move deltas are submitted closed-loop with up to
    ``pipeline`` in flight until ``duration_s`` of measured wall clock
    has elapsed. Every measured job is drained before the clock stops,
    so the rate is ``measured jobs / (last finish - window start)``.

    Returns ``(jobs, wall_seconds, jobs_per_sec, p50, p95, p99)``.
    """

    async def window():
        service = PlanningService(
            options=SchedulerOptions(workers=1, max_queue=2 * pipeline + 4)
        )
        await service.start()
        try:
            service.submit(Job("bench-b0", "baseline", scenario=spec))
            await service.wait("bench-b0")
            for i in range(warmup):
                service.submit(
                    Job(
                        f"bench-w{i}",
                        "delta",
                        baseline_id="bench-b0",
                        delta=move_delta(spec, to_corner=(i % 2 == 0)),
                    )
                )
            await service.drain()

            t0 = time.perf_counter()
            deadline = t0 + duration_s
            in_flight: List[str] = []
            measured: List[str] = []
            i = 0
            while time.perf_counter() < deadline or in_flight:
                while (
                    len(in_flight) < pipeline
                    and time.perf_counter() < deadline
                ):
                    job_id = f"bench-d{i}"
                    service.submit(
                        Job(
                            job_id,
                            "delta",
                            baseline_id="bench-b0",
                            delta=move_delta(spec, to_corner=(i % 2 == 0)),
                        )
                    )
                    in_flight.append(job_id)
                    i += 1
                if not in_flight:
                    break
                record = await service.wait(in_flight.pop(0))
                assert record.status is JobStatus.DONE, record.error
                measured.append(record.job.job_id)
            latencies = []
            last_finish = t0
            for job_id in measured:
                record = service.record(job_id)
                latencies.append(record.finished_at - record.submitted_at)
                last_finish = max(last_finish, record.finished_at)
            # Records use time.monotonic(); the window start does too via
            # the first submit. Use the span from window start to the
            # last finish on the same clock.
            first_submit = min(
                service.record(j).submitted_at for j in measured
            ) if measured else 0.0
            wall = max(1e-9, last_finish - first_submit)
            return len(measured), wall, latencies
        finally:
            await service.stop()

    jobs, wall, latencies = asyncio.run(window())
    return (
        jobs,
        wall,
        jobs / wall if wall > 0 else 0.0,
        _percentile(latencies, 0.50),
        _percentile(latencies, 0.95),
        _percentile(latencies, 0.99),
    )


def run_service_kernel(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
    repetitions: int = 3,
    duration_s: float = 2.0,
    warmup: int = 3,
) -> ServiceKernelResult:
    spec = make_service_scenario(grid, num_nets, total_sites, seed, site_seed)

    t0 = time.perf_counter()
    full_plan(spec)
    seconds_full = time.perf_counter() - t0

    incr, full_replan, match, stats = measure_incremental_speedup(
        spec, repetitions
    )
    jobs, wall, jobs_per_sec, p50, p95, p99 = measure_throughput(
        spec, duration_s=duration_s, warmup=warmup
    )
    return ServiceKernelResult(
        params={
            "grid": grid,
            "num_nets": num_nets,
            "total_sites": total_sites,
            "seed": seed,
            "site_seed": site_seed,
        },
        seconds_full=seconds_full,
        seconds_incremental=incr,
        seconds_full_replan=full_replan,
        incremental_speedup=full_replan / incr if incr > 0 else 0.0,
        signature_match=match,
        nets_total=stats.nets_total,
        nets_resolved=stats.nets_resolved,
        nets_replayed=stats.nets_replayed,
        jobs=jobs,
        wall_seconds=wall,
        jobs_per_sec=jobs_per_sec,
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
    )


# --------------------------------------------------------------------- #
# Trajectory file                                                        #
# --------------------------------------------------------------------- #

def load_service_trajectory(path: "str | Path") -> Dict[str, Any]:
    return load_trajectory(str(path))


def append_service_entry(
    path: "str | Path", label: str, result: ServiceKernelResult
) -> Dict[str, Any]:
    """Record one measurement; re-running a label replaces it in place."""
    return append_trajectory_entry(
        str(path),
        label,
        result.params,
        {
            "seconds_full": round(result.seconds_full, 4),
            "seconds_incremental": round(result.seconds_incremental, 4),
            "seconds_full_replan": round(result.seconds_full_replan, 4),
            "incremental_speedup": round(result.incremental_speedup, 2),
            "signature_match": result.signature_match,
            "nets_total": result.nets_total,
            "nets_resolved": result.nets_resolved,
            "nets_replayed": result.nets_replayed,
            "jobs": result.jobs,
            "wall_seconds": round(result.wall_seconds, 4),
            "jobs_per_sec": round(result.jobs_per_sec, 2),
            "latency_p50": round(result.latency_p50, 4),
            "latency_p95": round(result.latency_p95, 4),
            "latency_p99": round(result.latency_p99, 4),
        },
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="service kernel: incremental speedup + job throughput"
    )
    parser.add_argument("--fast", action="store_true",
                        help="16x16 / 120-net smoke instead of 32x32 / 500")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="measured throughput window in seconds")
    parser.add_argument("--warmup", type=int, default=3,
                        help="jobs run and discarded before the window")
    parser.add_argument("--label", default="incremental-service")
    parser.add_argument("--out", default=None,
                        help="trajectory JSON to append to")
    args = parser.parse_args(argv)
    kwargs: Dict[str, Any] = dict(
        repetitions=args.repeat,
        duration_s=args.duration,
        warmup=args.warmup,
    )
    if args.fast:
        kwargs.update(grid=16, num_nets=120, total_sites=600)
    result = run_service_kernel(**kwargs)
    print(
        f"full {result.seconds_full:.3f}s | incremental "
        f"{result.seconds_incremental:.3f}s vs full-replan "
        f"{result.seconds_full_replan:.3f}s -> "
        f"{result.incremental_speedup:.2f}x (match={result.signature_match})"
    )
    print(
        f"{result.jobs} jobs over {result.wall_seconds:.2f}s: "
        f"{result.jobs_per_sec:.2f} jobs/s, "
        f"p50 {result.latency_p50 * 1000:.1f}ms, "
        f"p95 {result.latency_p95 * 1000:.1f}ms, "
        f"p99 {result.latency_p99 * 1000:.1f}ms"
    )
    if args.out:
        append_service_entry(args.out, args.label, result)
        print(f"recorded -> {args.out}")
    return 0 if result.signature_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
