"""Service benchmark: incremental-vs-full speedup and job throughput.

Feeds ``benchmarks/BENCH_service.json``. Two measurements on the same
32x32 / 500-net workload the routing/buffering kernels use:

* **Incremental speedup** — plan a baseline, apply one single-macro-move
  delta, and time :func:`repro.service.incremental_replan` against a
  from-scratch :func:`repro.service.full_plan` of the evolved scenario.
  The two plans must agree on the buffering-kernel signature (exactness
  is part of the measurement, not a separate test).
* **Throughput / latency** — drive a real :class:`PlanningService`
  through a burst of alternating move deltas and report jobs/sec with
  p50/p95 per-job latency from the scheduler's own records.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.benchmarks.emit import append_trajectory_entry, load_trajectory
from repro.service import (
    DeltaSpec,
    Job,
    JobStatus,
    MacroSpec,
    PlanningService,
    ScenarioSpec,
    SchedulerOptions,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
)

SERVICE_BENCH_SCHEMA = 1


def make_service_scenario(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
) -> ScenarioSpec:
    """The benchmark scenario: one movable macro on the kernel workload."""
    macro_side = max(2, grid * 9 // 32)
    origin = max(0, grid * 10 // 32)
    return ScenarioSpec(
        grid=grid,
        num_nets=num_nets,
        total_sites=total_sites,
        seed=seed,
        site_seed=site_seed,
        macros=(MacroSpec(origin, origin, macro_side, macro_side),),
    )


def move_delta(spec: ScenarioSpec, to_corner: bool = True) -> DeltaSpec:
    """A single-macro-move delta (the acceptance workload)."""
    side = spec.macros[0].width
    far = max(0, spec.grid - side - 1)
    near = max(0, spec.grid // 8)
    target = (far, far) if to_corner else (near, near)
    return DeltaSpec((move_macro(0, *target),))


@dataclass(frozen=True)
class ServiceKernelResult:
    """One full measurement (see :func:`run_service_kernel`)."""

    params: Dict[str, Any]
    seconds_full: float
    seconds_incremental: float
    seconds_full_replan: float
    incremental_speedup: float
    signature_match: bool
    nets_total: int
    nets_resolved: int
    nets_replayed: int
    jobs: int
    jobs_per_sec: float
    latency_p50: float
    latency_p95: float


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def measure_incremental_speedup(spec: ScenarioSpec, repetitions: int = 3):
    """Best-of-N incremental and full replan times for one move delta.

    Returns ``(seconds_incremental, seconds_full_replan, match, stats)``.
    Each repetition replans from a *fresh* baseline so the incremental
    arm never benefits from its own previous run.
    """
    import gc

    delta = move_delta(spec)
    evolved = apply_delta(spec, delta)
    best_incr: Optional[float] = None
    best_full: Optional[float] = None
    match = True
    last_stats = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repetitions)):
            baseline = full_plan(spec)
            t0 = time.perf_counter()
            stats = incremental_replan(baseline, delta)
            seconds_incr = time.perf_counter() - t0
            t0 = time.perf_counter()
            reference = full_plan(evolved)
            seconds_full = time.perf_counter() - t0
            match = match and stats.signature == reference.signature
            last_stats = stats
            if best_incr is None or seconds_incr < best_incr:
                best_incr = seconds_incr
            if best_full is None or seconds_full < best_full:
                best_full = seconds_full
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best_incr, best_full, match, last_stats


def measure_throughput(spec: ScenarioSpec, jobs: int = 10):
    """Jobs/sec and latency percentiles over a burst of move deltas."""

    async def burst():
        service = PlanningService(
            options=SchedulerOptions(workers=1, max_queue=jobs + 1)
        )
        await service.start()
        try:
            service.submit(Job("bench-b0", "baseline", scenario=spec))
            await service.wait("bench-b0")
            t0 = time.perf_counter()
            for i in range(jobs):
                service.submit(
                    Job(
                        f"bench-d{i}",
                        "delta",
                        baseline_id="bench-b0",
                        delta=move_delta(spec, to_corner=(i % 2 == 0)),
                    )
                )
            await service.drain()
            elapsed = time.perf_counter() - t0
            latencies = []
            for i in range(jobs):
                record = service.record(f"bench-d{i}")
                assert record.status is JobStatus.DONE, record.error
                latencies.append(record.finished_at - record.submitted_at)
            return elapsed, latencies
        finally:
            await service.stop()

    elapsed, latencies = asyncio.run(burst())
    return (
        jobs / elapsed if elapsed > 0 else 0.0,
        _percentile(latencies, 0.50),
        _percentile(latencies, 0.95),
    )


def run_service_kernel(
    grid: int = 32,
    num_nets: int = 500,
    total_sites: int = 2500,
    seed: int = 0,
    site_seed: int = 0,
    repetitions: int = 3,
    jobs: int = 10,
) -> ServiceKernelResult:
    spec = make_service_scenario(grid, num_nets, total_sites, seed, site_seed)

    t0 = time.perf_counter()
    full_plan(spec)
    seconds_full = time.perf_counter() - t0

    incr, full_replan, match, stats = measure_incremental_speedup(
        spec, repetitions
    )
    jobs_per_sec, p50, p95 = measure_throughput(spec, jobs)
    return ServiceKernelResult(
        params={
            "grid": grid,
            "num_nets": num_nets,
            "total_sites": total_sites,
            "seed": seed,
            "site_seed": site_seed,
        },
        seconds_full=seconds_full,
        seconds_incremental=incr,
        seconds_full_replan=full_replan,
        incremental_speedup=full_replan / incr if incr > 0 else 0.0,
        signature_match=match,
        nets_total=stats.nets_total,
        nets_resolved=stats.nets_resolved,
        nets_replayed=stats.nets_replayed,
        jobs=jobs,
        jobs_per_sec=jobs_per_sec,
        latency_p50=p50,
        latency_p95=p95,
    )


# --------------------------------------------------------------------- #
# Trajectory file                                                        #
# --------------------------------------------------------------------- #

def load_service_trajectory(path: "str | Path") -> Dict[str, Any]:
    return load_trajectory(str(path))


def append_service_entry(
    path: "str | Path", label: str, result: ServiceKernelResult
) -> Dict[str, Any]:
    """Record one measurement; re-running a label replaces it in place."""
    return append_trajectory_entry(
        str(path),
        label,
        result.params,
        {
            "seconds_full": round(result.seconds_full, 4),
            "seconds_incremental": round(result.seconds_incremental, 4),
            "seconds_full_replan": round(result.seconds_full_replan, 4),
            "incremental_speedup": round(result.incremental_speedup, 2),
            "signature_match": result.signature_match,
            "nets_total": result.nets_total,
            "nets_resolved": result.nets_resolved,
            "nets_replayed": result.nets_replayed,
            "jobs": result.jobs,
            "jobs_per_sec": round(result.jobs_per_sec, 2),
            "latency_p50": round(result.latency_p50, 4),
            "latency_p95": round(result.latency_p95, 4),
        },
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="service kernel: incremental speedup + job throughput"
    )
    parser.add_argument("--fast", action="store_true",
                        help="16x16 / 120-net smoke instead of 32x32 / 500")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=10)
    parser.add_argument("--label", default="incremental-service")
    parser.add_argument("--out", default=None,
                        help="trajectory JSON to append to")
    args = parser.parse_args(argv)
    kwargs: Dict[str, Any] = dict(repetitions=args.repeat, jobs=args.jobs)
    if args.fast:
        kwargs.update(grid=16, num_nets=120, total_sites=600)
    result = run_service_kernel(**kwargs)
    print(
        f"full {result.seconds_full:.3f}s | incremental "
        f"{result.seconds_incremental:.3f}s vs full-replan "
        f"{result.seconds_full_replan:.3f}s -> "
        f"{result.incremental_speedup:.2f}x (match={result.signature_match})"
    )
    print(
        f"{result.jobs} jobs: {result.jobs_per_sec:.2f} jobs/s, "
        f"p50 {result.latency_p50 * 1000:.1f}ms, "
        f"p95 {result.latency_p95 * 1000:.1f}ms"
    )
    if args.out:
        append_service_entry(args.out, args.label, result)
        print(f"recorded -> {args.out}")
    return 0 if result.signature_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
