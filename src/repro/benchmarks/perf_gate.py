"""Perf-gate: diff freshly emitted BENCH_*.json entries against a recorded
trajectory.

The recorded ``benchmarks/BENCH_*.json`` files are the repo's performance
memory: every kernel run appends a ``speedup_vs_baseline`` entry through
:mod:`repro.benchmarks.emit`. CI re-runs the kernels into a *fresh* file and
this module compares the fresh entries against the recorded ones, failing
(nonzero exit) when a fresh entry's speedup regresses beyond a relative
tolerance.

Matching mirrors the emit layer's identity rule — ``(params, workers)`` for
worker-styled entries (labels differ between CI and the recorded runs, so
they are deliberately *excluded* from the match key here) — and the gate
arms per-entry only when the measuring machine had at least ``workers``
cores, the same honesty rule :func:`emit.append_trajectory_entry` applies.
Entries present only on one side are reported but never fail the gate: CI
runs a subset of the recorded workloads, and new workloads have no history
yet.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmarks.emit import SpeedupGateError, load_trajectory

DEFAULT_TOLERANCE = 0.25


def _entry_key(entry: Dict[str, Any]) -> Optional[Tuple[str, Optional[int]]]:
    """Canonical match key: frozen params + workers; None when unkeyable."""
    params = entry.get("params")
    if not isinstance(params, dict):
        return None
    frozen = repr(sorted(params.items()))
    return (frozen, entry.get("workers"))


@dataclass
class GateResult:
    """Outcome of comparing one fresh entry against its recorded twin."""

    label: str
    workers: Optional[int]
    recorded_speedup: Optional[float]
    fresh_speedup: Optional[float]
    status: str  # "ok" | "regressed" | "skipped: <reason>"

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def describe(self) -> str:
        return (
            f"{self.label} (workers={self.workers}): recorded "
            f"{self.recorded_speedup}x, fresh {self.fresh_speedup}x -> "
            f"{self.status}"
        )


def compare_trajectories(
    recorded: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    cores: Optional[int] = None,
) -> List[GateResult]:
    """Match fresh entries to recorded ones; flag speedup regressions.

    A fresh entry regresses when its ``speedup_vs_baseline`` falls below
    ``recorded * (1 - tolerance)``. Entries without a speedup on either
    side, or whose fresh measurement ran on fewer cores than workers, are
    reported as skipped, never failed.
    """
    if cores is None:
        cores = os.cpu_count() or 1
    recorded_by_key: Dict[Tuple[str, Optional[int]], Dict[str, Any]] = {}
    for entry in recorded.get("entries", []):
        key = _entry_key(entry)
        if key is not None:
            # last-wins: gate against the most recent recorded measurement
            recorded_by_key[key] = entry
    results: List[GateResult] = []
    for entry in fresh.get("entries", []):
        key = _entry_key(entry)
        label = entry.get("label", "?")
        workers = entry.get("workers")
        if key is None:
            results.append(
                GateResult(label, workers, None, None, "skipped: no params")
            )
            continue
        twin = recorded_by_key.get(key)
        if twin is None:
            results.append(
                GateResult(
                    label, workers, None,
                    entry.get("speedup_vs_baseline"),
                    "skipped: no recorded entry for these params",
                )
            )
            continue
        rec_speedup = twin.get("speedup_vs_baseline")
        new_speedup = entry.get("speedup_vs_baseline")
        if rec_speedup is None or new_speedup is None:
            results.append(
                GateResult(
                    label, workers, rec_speedup, new_speedup,
                    "skipped: speedup missing on one side",
                )
            )
            continue
        if workers is not None and cores < workers:
            results.append(
                GateResult(
                    label, workers, rec_speedup, new_speedup,
                    f"skipped: {cores} cores < {workers} workers",
                )
            )
            continue
        floor = rec_speedup * (1.0 - tolerance)
        status = "ok" if new_speedup >= floor else "regressed"
        results.append(
            GateResult(label, workers, rec_speedup, new_speedup, status)
        )
    return results


def gate_files(
    recorded_path: str,
    fresh_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    cores: Optional[int] = None,
) -> List[GateResult]:
    """File-level wrapper; raises :class:`SpeedupGateError` on regression."""
    results = compare_trajectories(
        load_trajectory(recorded_path),
        load_trajectory(fresh_path),
        tolerance=tolerance,
        cores=cores,
    )
    failed = [r for r in results if r.failed]
    if failed:
        lines = "\n".join(f"  {r.describe()}" for r in failed)
        raise SpeedupGateError(
            f"{len(failed)} entr{'y' if len(failed) == 1 else 'ies'} in "
            f"{fresh_path} regressed beyond tolerance={tolerance} vs "
            f"{recorded_path}:\n{lines}"
        )
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Diff a freshly emitted BENCH_*.json against the recorded "
            "trajectory; exit 1 on speedup regression beyond tolerance."
        )
    )
    parser.add_argument("recorded", help="recorded trajectory (repo file)")
    parser.add_argument("fresh", help="freshly emitted trajectory")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative speedup slack before failing (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        results = gate_files(
            args.recorded, args.fresh, tolerance=args.tolerance
        )
    except SpeedupGateError as exc:
        print(f"perf-gate FAILED: {exc}", file=sys.stderr)
        return 1
    for result in results:
        print(f"perf-gate: {result.describe()}")
    compared = sum(1 for r in results if not r.status.startswith("skipped"))
    print(
        f"perf-gate OK: {compared} compared, "
        f"{len(results) - compared} skipped"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
