"""Perf-gate: diff freshly emitted BENCH_*.json entries against a recorded
trajectory.

The recorded ``benchmarks/BENCH_*.json`` files are the repo's performance
memory: every kernel run appends a ``speedup_vs_baseline`` entry through
:mod:`repro.benchmarks.emit`. CI re-runs the kernels into a *fresh* file and
this module compares the fresh entries against the recorded ones, failing
(nonzero exit) when a fresh entry's speedup regresses beyond a relative
tolerance.

Matching mirrors the emit layer's identity rule — ``(params, workers)`` for
worker-styled entries (labels differ between CI and the recorded runs, so
they are deliberately *excluded* from the match key here) — and the gate
arms per-entry only when the measuring machine had at least ``workers``
cores, the same honesty rule :func:`emit.append_trajectory_entry` applies.
Entries present only on one side are reported but never fail the gate: CI
runs a subset of the recorded workloads, and new workloads have no history
yet.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.benchmarks.emit import SpeedupGateError, load_trajectory

DEFAULT_TOLERANCE = 0.25

#: Lower-is-better metric gates per trajectory file (matched on the
#: recorded file's basename). Each gate is ``metric -> (rel_tolerance,
#: abs_slack)``: a fresh value fails when it exceeds
#: ``recorded * (1 + rel_tolerance) + abs_slack``. The absolute slack
#: keeps near-zero recorded values (a 0.0 optimality gap, a sub-second
#: timing) from turning measurement noise into a hard failure.
METRIC_GATES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "BENCH_bounds.json": {
        "gap": (0.25, 0.05),
        "seconds_bound": (0.5, 1.0),
    },
    "BENCH_streaming.json": {
        "event_p95": (0.5, 0.5),
    },
}

#: Higher-is-better metric gates, same shape as :data:`METRIC_GATES`
#: but with a *floor*: a fresh value fails when it drops below
#: ``recorded * (1 - rel_tolerance) - abs_slack``. Used for the streaming
#: tier's steady-state incremental speedup, where smaller is the
#: regression.
MIN_METRIC_GATES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "BENCH_streaming.json": {
        "steady_speedup": (0.25, 0.1),
    },
}


def _entry_key(entry: Dict[str, Any]) -> Optional[Tuple[str, Optional[int]]]:
    """Canonical match key: frozen params + workers; None when unkeyable."""
    params = entry.get("params")
    if not isinstance(params, dict):
        return None
    frozen = repr(sorted(params.items()))
    return (frozen, entry.get("workers"))


@dataclass
class GateResult:
    """Outcome of comparing one fresh entry against its recorded twin."""

    label: str
    workers: Optional[int]
    recorded_speedup: Optional[float]
    fresh_speedup: Optional[float]
    status: str  # "ok" | "regressed" | "skipped: <reason>"

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def describe(self) -> str:
        return (
            f"{self.label} (workers={self.workers}): recorded "
            f"{self.recorded_speedup}x, fresh {self.fresh_speedup}x -> "
            f"{self.status}"
        )


@dataclass
class MetricGateResult:
    """Outcome of gating one lower-is-better metric on one fresh entry."""

    label: str
    metric: str
    recorded_value: Optional[float]
    fresh_value: Optional[float]
    status: str  # "ok" | "regressed" | "skipped: <reason>"

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def describe(self) -> str:
        return (
            f"{self.label} [{self.metric}]: recorded "
            f"{self.recorded_value}, fresh {self.fresh_value} -> "
            f"{self.status}"
        )


def compare_metrics(
    recorded: Dict[str, Any],
    fresh: Dict[str, Any],
    gates: Dict[str, Tuple[float, float]],
    minimum: bool = False,
) -> List[MetricGateResult]:
    """Gate per-entry metrics, lower-is-better by default.

    Fresh entries match recorded ones on the same ``(params, workers)``
    identity as :func:`compare_trajectories`. For each gated metric a
    fresh value regresses when it exceeds
    ``recorded * (1 + rel_tolerance) + abs_slack`` — or, with
    ``minimum=True`` (higher-is-better metrics), when it drops below
    ``recorded * (1 - rel_tolerance) - abs_slack``. Missing or
    non-numeric values on either side are reported as skipped (a
    ``None`` gap from a certified-infeasible run never fails the gate).
    """
    recorded_by_key: Dict[Tuple[str, Optional[int]], Dict[str, Any]] = {}
    for entry in recorded.get("entries", []):
        key = _entry_key(entry)
        if key is not None:
            recorded_by_key[key] = entry
    results: List[MetricGateResult] = []
    for entry in fresh.get("entries", []):
        key = _entry_key(entry)
        label = entry.get("label", "?")
        if key is None:
            continue
        twin = recorded_by_key.get(key)
        if twin is None:
            results.append(
                MetricGateResult(
                    label, "*", None, None,
                    "skipped: no recorded entry for these params",
                )
            )
            continue
        for metric, (rel_tolerance, abs_slack) in sorted(gates.items()):
            rec_value = twin.get(metric)
            new_value = entry.get(metric)
            if not isinstance(rec_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                results.append(
                    MetricGateResult(
                        label, metric, rec_value, new_value,
                        "skipped: value missing on one side",
                    )
                )
                continue
            if minimum:
                floor = rec_value * (1.0 - rel_tolerance) - abs_slack
                status = "ok" if new_value >= floor else "regressed"
            else:
                ceiling = rec_value * (1.0 + rel_tolerance) + abs_slack
                status = "ok" if new_value <= ceiling else "regressed"
            results.append(
                MetricGateResult(label, metric, rec_value, new_value, status)
            )
    return results


def metric_gates_for(recorded_path: str) -> Dict[str, Tuple[float, float]]:
    """The registered metric gates for a trajectory file (may be empty)."""
    return METRIC_GATES.get(os.path.basename(recorded_path), {})


def min_metric_gates_for(recorded_path: str) -> Dict[str, Tuple[float, float]]:
    """The registered higher-is-better gates for a file (may be empty)."""
    return MIN_METRIC_GATES.get(os.path.basename(recorded_path), {})


def compare_trajectories(
    recorded: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    cores: Optional[int] = None,
) -> List[GateResult]:
    """Match fresh entries to recorded ones; flag speedup regressions.

    A fresh entry regresses when its ``speedup_vs_baseline`` falls below
    ``recorded * (1 - tolerance)``. Entries without a speedup on either
    side, or whose fresh measurement ran on fewer cores than workers, are
    reported as skipped, never failed.
    """
    if cores is None:
        cores = os.cpu_count() or 1
    recorded_by_key: Dict[Tuple[str, Optional[int]], Dict[str, Any]] = {}
    for entry in recorded.get("entries", []):
        key = _entry_key(entry)
        if key is not None:
            # last-wins: gate against the most recent recorded measurement
            recorded_by_key[key] = entry
    results: List[GateResult] = []
    for entry in fresh.get("entries", []):
        key = _entry_key(entry)
        label = entry.get("label", "?")
        workers = entry.get("workers")
        if key is None:
            results.append(
                GateResult(label, workers, None, None, "skipped: no params")
            )
            continue
        twin = recorded_by_key.get(key)
        if twin is None:
            results.append(
                GateResult(
                    label, workers, None,
                    entry.get("speedup_vs_baseline"),
                    "skipped: no recorded entry for these params",
                )
            )
            continue
        rec_speedup = twin.get("speedup_vs_baseline")
        new_speedup = entry.get("speedup_vs_baseline")
        if rec_speedup is None or new_speedup is None:
            results.append(
                GateResult(
                    label, workers, rec_speedup, new_speedup,
                    "skipped: speedup missing on one side",
                )
            )
            continue
        if workers is not None and cores < workers:
            results.append(
                GateResult(
                    label, workers, rec_speedup, new_speedup,
                    f"skipped: {cores} cores < {workers} workers",
                )
            )
            continue
        floor = rec_speedup * (1.0 - tolerance)
        status = "ok" if new_speedup >= floor else "regressed"
        results.append(
            GateResult(label, workers, rec_speedup, new_speedup, status)
        )
    return results


def gate_files(
    recorded_path: str,
    fresh_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
    cores: Optional[int] = None,
    metrics: Optional[Dict[str, Tuple[float, float]]] = None,
) -> List[Any]:
    """File-level wrapper; raises :class:`SpeedupGateError` on regression.

    Beyond the speedup comparison, any metric gates registered for the
    recorded file's basename in :data:`METRIC_GATES` (or passed
    explicitly via ``metrics``) run on the same entry matching; a
    metric regression fails the gate exactly like a speedup one. The
    returned list mixes :class:`GateResult` and
    :class:`MetricGateResult` rows.
    """
    recorded = load_trajectory(recorded_path)
    fresh = load_trajectory(fresh_path)
    results: List[Any] = list(
        compare_trajectories(recorded, fresh, tolerance=tolerance, cores=cores)
    )
    gates = metrics if metrics is not None else metric_gates_for(recorded_path)
    if gates:
        results.extend(compare_metrics(recorded, fresh, gates))
    min_gates = min_metric_gates_for(recorded_path)
    if min_gates:
        results.extend(
            compare_metrics(recorded, fresh, min_gates, minimum=True)
        )
    failed = [r for r in results if r.failed]
    if failed:
        lines = "\n".join(f"  {r.describe()}" for r in failed)
        raise SpeedupGateError(
            f"{len(failed)} entr{'y' if len(failed) == 1 else 'ies'} in "
            f"{fresh_path} regressed beyond tolerance={tolerance} vs "
            f"{recorded_path}:\n{lines}"
        )
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Diff a freshly emitted BENCH_*.json against the recorded "
            "trajectory; exit 1 on speedup regression beyond tolerance."
        )
    )
    parser.add_argument("recorded", help="recorded trajectory (repo file)")
    parser.add_argument("fresh", help="freshly emitted trajectory")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative speedup slack before failing (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        results = gate_files(
            args.recorded, args.fresh, tolerance=args.tolerance
        )
    except SpeedupGateError as exc:
        print(f"perf-gate FAILED: {exc}", file=sys.stderr)
        return 1
    for result in results:
        print(f"perf-gate: {result.describe()}")
    compared = sum(1 for r in results if not r.status.startswith("skipped"))
    print(
        f"perf-gate OK: {compared} compared, "
        f"{len(results) - compared} skipped"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
