"""The Stage-3 buffering-kernel micro-benchmark and its recorded trajectory.

The scenario reuses the routing kernel's 32x32 / 500-net workload: every
net is maze-routed once (untimed setup), buffer sites are scattered with
the paper's recipe (a 9x9 blocked region plus a uniform scatter), and the
timed section is exactly ``assign_buffers_stage3`` — the Eq. (2) cost
evaluation, the Fig. 9 multi-sink DP per net, the greedy fallback for
DP-infeasible nets, and the ``p(v)`` bookkeeping. Before/after numbers
therefore isolate the buffering engine from the routing kernel.

Results accumulate in ``benchmarks/BENCH_buffering.json`` with the same
best-of-N / GC-paused methodology as ``BENCH_routing.json``; the first
``workers=1`` entry is the baseline and later entries carry
``speedup_vs_baseline``. ``python -m repro.benchmarks.buffering_kernel``
appends an entry from the command line (CI uses ``--fast``).

The buffering *signature* (a SHA-256 over every net's buffer specs, the
``b(v)`` grid, and the failed-net list) pins "identical Stage-3 output":
any change to the engine that moves even one buffer of one net changes
the signature. ``tests/golden/buffering_kernel_32x32_seed0.json`` holds
the signature and full specs captured before the unified solver landed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.benchmarks.emit import append_trajectory_entry
from repro.benchmarks.routing_kernel import (
    RoutingScenario,
    make_routing_scenario,
)
from repro.core.assignment import AssignmentResult, assign_buffers_stage3
from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import RouteTree
from repro.tilegraph.sites import SiteDistribution

#: Default location of the trajectory file, relative to the repo root.
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "BENCH_buffering.json")


@dataclass
class BufferingScenario:
    """A reproducible Stage-3 workload: routed nets plus site distribution."""

    scenario: RoutingScenario
    routes: Dict[str, RouteTree]
    length_limit: int
    total_sites: int
    site_seed: int

    @property
    def graph(self):
        return self.scenario.graph

    @property
    def order(self) -> List[str]:
        return sorted(self.routes)

    @property
    def params(self) -> dict:
        return {
            "grid": self.scenario.grid,
            "num_nets": len(self.routes),
            "capacity": self.scenario.capacity,
            "seed": self.scenario.seed,
            "length_limit": self.length_limit,
            "total_sites": self.total_sites,
            "site_seed": self.site_seed,
        }


def make_buffering_scenario(
    grid: int = 32,
    num_nets: int = 500,
    capacity: int = 8,
    seed: int = 0,
    length_limit: int = 5,
    total_sites: int = 2500,
    site_seed: int = 0,
    window_margin: int = 6,
) -> BufferingScenario:
    """Route the kernel workload once and scatter the buffer sites.

    The routed trees and the site distribution are both deterministic in
    the seeds, so every call with the same arguments produces the same
    Stage-3 input instance.
    """
    scenario = make_routing_scenario(
        grid=grid, num_nets=num_nets, capacity=capacity, seed=seed
    )
    graph = scenario.graph
    routes: Dict[str, RouteTree] = {}
    for name, (source, sinks) in scenario.nets.items():
        tree = route_net_on_tiles(
            graph, source, sinks, net_name=name, window_margin=window_margin
        )
        tree.add_usage(graph)
        routes[name] = tree
    SiteDistribution(
        total_sites=total_sites, blocked_size=9, seed=site_seed
    ).apply(graph)
    return BufferingScenario(
        scenario=scenario,
        routes=routes,
        length_limit=length_limit,
        total_sites=total_sites,
        site_seed=site_seed,
    )


@dataclass
class BufferingKernelResult:
    """One timed run of the buffering kernel."""

    seconds_stage3: float
    buffers_inserted: int
    num_fails: int
    dp_infeasible: int
    signature: str
    assignment: AssignmentResult = field(repr=False, default=None)


def buffers_as_json(
    routes: Dict[str, RouteTree]
) -> Dict[str, List[List[Optional[List[int]]]]]:
    """Canonical JSON-able buffer specs per net (for golden files).

    Default-kind buffers stay two-element ``[tile, child]`` entries, so
    every pre-library golden (and the signature over this payload) is
    byte-identical; a non-default kind appends its name as a third
    element.
    """
    return {
        name: [
            [list(s.tile), list(s.drives_child) if s.drives_child else None]
            + ([s.kind] if s.kind else [])
            for s in routes[name].buffer_specs()
        ]
        for name in sorted(routes)
    }


def buffering_signature(
    routes: Dict[str, RouteTree], graph, failed: List[str]
) -> str:
    """SHA-256 over buffer specs, the ``b(v)`` grid, and the failed nets."""
    payload = json.dumps(
        {
            "buffers": buffers_as_json(routes),
            "used_sites": graph.used_sites.tolist(),
            "failed": sorted(failed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_buffering_kernel(
    instance: BufferingScenario,
    workers: int = 1,
    backend: str = "pool",
    tracer=None,
    pool=None,
    solver: str = "dp",
    library: str = "single",
) -> BufferingKernelResult:
    """Run Stage-3 buffer assignment over the whole instance, timed.

    ``solver``/``library`` select the per-net strategy and the buffer
    library it sizes over (``multi_type`` only); the defaults reproduce
    the recorded ``dp`` trajectory exactly.
    """
    kwargs = {}
    # ``workers`` arrived with the unified engine and ``backend`` with
    # the shared-memory pool; stay runnable on the pre-solver code so
    # the baseline entry can be recorded from it.
    varnames = getattr(assign_buffers_stage3, "__code__", None).co_varnames
    if workers != 1 or "workers" in varnames:
        kwargs["workers"] = workers
    if "backend" in varnames:
        kwargs["backend"] = backend
        kwargs["pool"] = pool
        kwargs["solver_names"] = lambda name: solver
    if solver != "dp" or library != "single":
        from repro.technology import TECH_180NM

        kwargs["technology"] = TECH_180NM
        if "buffer_library" in varnames:
            kwargs["buffer_library"] = library
    limits = {name: instance.length_limit for name in instance.routes}
    start = time.perf_counter()
    assignment = assign_buffers_stage3(
        instance.graph,
        instance.routes,
        limits,
        instance.order,
        use_probability=True,
        tracer=tracer,
        **kwargs,
    )
    end = time.perf_counter()
    return BufferingKernelResult(
        seconds_stage3=end - start,
        buffers_inserted=assignment.buffers_inserted,
        num_fails=assignment.num_fails,
        dp_infeasible=len(assignment.dp_infeasible_nets),
        signature=buffering_signature(
            instance.routes, instance.graph, assignment.failed_nets
        ),
        assignment=assignment,
    )


def run_best_of(
    repetitions: int,
    workers: int = 1,
    backend: str = "pool",
    tracer=None,
    solver: str = "dp",
    library: str = "single",
    **scenario_kwargs,
) -> Tuple[BufferingScenario, BufferingKernelResult]:
    """Fastest of ``repetitions`` fresh runs, with the GC paused.

    Same methodology as the routing kernel (PR 2): the timed section is a
    fraction-of-a-second single shot, so best-of-N with collection
    deferred to between runs is what every trajectory entry records.
    Stage 3 is deterministic, so every repetition yields the same buffer
    placement — only the clock differs.
    """
    import gc

    best: Optional[Tuple[BufferingScenario, BufferingKernelResult]] = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repetitions)):
            instance = make_buffering_scenario(**scenario_kwargs)
            result = run_buffering_kernel(
                instance,
                workers=workers,
                backend=backend,
                tracer=tracer,
                solver=solver,
                library=library,
            )
            if best is None or result.seconds_stage3 < best[1].seconds_stage3:
                best = (instance, result)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best


# --------------------------------------------------------------------- #
# Trajectory file                                                       #
# --------------------------------------------------------------------- #


def append_entry(
    path: str,
    label: str,
    result: BufferingKernelResult,
    instance: BufferingScenario,
    workers: int = 1,
    extra: Optional[dict] = None,
    min_speedup_vs_workers1: Optional[float] = None,
) -> dict:
    """Append one measured entry; computes speedup vs the first baseline.

    Mirrors the routing trajectory's contract: speedups compare entries
    with identical scenario params against the first ``workers=1`` entry,
    and re-running an existing label replaces that entry in place.
    ``min_speedup_vs_workers1`` arms the emit-layer speedup gate (see
    :func:`repro.benchmarks.emit.append_trajectory_entry`).
    """
    return append_trajectory_entry(
        path,
        label,
        instance.params,
        {
            "seconds_stage3": round(result.seconds_stage3, 4),
            "buffers_inserted": result.buffers_inserted,
            "num_fails": result.num_fails,
            "dp_infeasible": result.dp_infeasible,
            "signature": result.signature,
        },
        workers=workers,
        speedup_from="seconds_stage3",
        extra=extra,
        min_speedup_vs_workers1=min_speedup_vs_workers1,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks.buffering_kernel",
        description="Run the Stage-3 buffering kernel benchmark and append "
        "the result to the BENCH_buffering.json trajectory.",
    )
    parser.add_argument("--label", required=True, help="entry label")
    parser.add_argument("--out", default=DEFAULT_TRAJECTORY)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend", choices=("pool", "threads"), default="pool",
        help="parallel engine for --workers > 1",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="small instance (16x16, 120 nets) for CI smoke runs",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="record the fastest of N runs (default 3)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail if a --workers > 1 entry is below this speedup over "
        "the workers=1 baseline (armed only when the machine has that "
        "many cores)",
    )
    parser.add_argument(
        "--solver", default="dp",
        help="Stage-3 strategy (see repro.core.solver.SOLVER_NAMES)",
    )
    parser.add_argument(
        "--library", default="single",
        help="buffer library for --solver multi_type (single, tech)",
    )
    args = parser.parse_args(argv)
    kwargs = dict(seed=args.seed, site_seed=args.seed)
    if args.fast:
        kwargs.update(grid=16, num_nets=120, total_sites=600)
    instance, result = run_best_of(
        args.repeat,
        workers=args.workers,
        backend=args.backend,
        solver=args.solver,
        library=args.library,
        **kwargs,
    )
    extra = {"backend": args.backend}
    params = dict(instance.params)
    if args.solver != "dp" or args.library != "single":
        # Non-default strategies get their own trajectory identity (so
        # their timings never gate against the dp baseline) plus a
        # delay-quality report with the DP's O(bn^2) counter evidence.
        params["solver"] = args.solver
        params["library"] = args.library
        extra.update(
            _quality_extra(instance, args.solver, args.library, args.workers)
        )
    entry = append_trajectory_entry(
        args.out,
        args.label,
        params,
        {
            "seconds_stage3": round(result.seconds_stage3, 4),
            "buffers_inserted": result.buffers_inserted,
            "num_fails": result.num_fails,
            "dp_infeasible": result.dp_infeasible,
            "signature": result.signature,
        },
        workers=args.workers,
        speedup_from="seconds_stage3",
        extra=extra,
        min_speedup_vs_workers1=args.min_speedup,
    )
    print(json.dumps(entry, indent=2))
    return 0


def _quality_extra(
    instance: BufferingScenario, solver: str, library: str, workers: int
) -> dict:
    """Delay-quality + DP-counter evidence for a non-default strategy.

    Re-runs the kernel once sequentially under a tracer (per-net DP
    counters are exact only at ``workers=1``) on a fresh instance, and
    measures the worst/mean Elmore sink delay of the solved plan next to
    the default-``dp`` plan on the same workload.
    """
    from repro.obs import Tracer
    from repro.technology import TECH_180NM, resolve_library
    from repro.timing.elmore import delay_summary

    tracer = Tracer()
    traced = make_buffering_scenario(**_scenario_kwargs_of(instance))
    run_buffering_kernel(
        traced, workers=1, tracer=tracer, solver=solver, library=library
    )
    lib = resolve_library(library, TECH_180NM)
    worst, mean, _ = delay_summary(
        traced.routes, traced.graph, TECH_180NM, library=lib
    )
    baseline = make_buffering_scenario(**_scenario_kwargs_of(instance))
    run_buffering_kernel(baseline, workers=1)
    base_worst, base_mean, _ = delay_summary(
        baseline.routes, baseline.graph, TECH_180NM
    )
    counters = {}
    for name in ("dp.kind_candidates", "dp.candidates_pruned"):
        metric = tracer.metrics.get(name)
        if metric is not None:
            counters[name] = metric.value
    for name in ("dp.kinds", "dp.kind_list_max"):
        metric = tracer.metrics.get(name)
        if metric is not None:
            counters[name] = metric.value
    return {
        "worst_delay_ps": round(worst * 1e12, 3),
        "mean_delay_ps": round(mean * 1e12, 3),
        "dp_worst_delay_ps": round(base_worst * 1e12, 3),
        "dp_mean_delay_ps": round(base_mean * 1e12, 3),
        "counters": counters,
    }


def _scenario_kwargs_of(instance: BufferingScenario) -> dict:
    p = instance.params
    return dict(
        grid=p["grid"],
        num_nets=p["num_nets"],
        capacity=p["capacity"],
        seed=p["seed"],
        length_limit=p["length_limit"],
        total_sites=p["total_sites"],
        site_seed=p["site_seed"],
    )


if __name__ == "__main__":
    raise SystemExit(main())
