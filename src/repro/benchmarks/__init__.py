"""Synthetic versions of the paper's ten benchmarks (Table I).

The original MCNC/CBL floorplan files and Cong et al.'s four random
circuits are not distributable; these generators synthesize circuits that
match every published Table I statistic — block count, net count, pad
count, sink count, grid size, tile area (hence die size), length limit and
buffer-site budget — with deterministic seeds. See DESIGN.md §2 for why
this substitution preserves the evaluation's behaviour.
"""

from repro.benchmarks.spec import BenchmarkSpec, BENCHMARK_SPECS, CBL_CIRCUITS, RANDOM_CIRCUITS
from repro.benchmarks.generator import BenchmarkInstance, generate_benchmark
from repro.benchmarks.loader import load_benchmark

__all__ = [
    "BenchmarkSpec",
    "BENCHMARK_SPECS",
    "CBL_CIRCUITS",
    "RANDOM_CIRCUITS",
    "BenchmarkInstance",
    "generate_benchmark",
    "load_benchmark",
]
