"""Shared BENCH_*.json trajectory emitter.

Every kernel benchmark (routing, buffering, service, explore) records its
measurements in a small *trajectory* file: a ``schema`` tag, the
``benchmark`` params pinned by the first entry, and a list of ``entries``
each describing one measured configuration. The bookkeeping — label-based
in-place replacement, speedup-vs-baseline lookup, atomic-enough rewrite —
was copy-pasted across the kernels; this module is the one implementation
they all share.

Contract (unchanged from the per-kernel originals):

* The first entry pins ``data["benchmark"]`` to its params.
* Re-recording an existing identity *replaces* that entry in place, so
  benchmark reruns refresh their numbers instead of growing the file.
  Identity is ``(label, params, workers)`` for worker-styled kernels and
  ``label`` alone for kernels that record one arm per label.
* When ``speedup_from`` names a seconds field, the entry gains
  ``speedup_vs_baseline`` measured against the first ``workers == 1``
  entry with identical params (never against itself).
* Worker-styled entries record ``cores`` (``os.cpu_count()`` at measure
  time) so a reader can judge whether a parallel number was measured on
  hardware that could possibly show a speedup.
* ``min_speedup_vs_workers1`` turns the speedup into a *gate*: a
  parallel entry slower than the floor raises :class:`SpeedupGateError`
  (and is not recorded), failing the calling benchmark. The gate only
  arms when the machine has at least ``workers`` cores — a 2-worker run
  on a 1-core box cannot honestly be expected to beat the sequential
  arm, so the entry records why the gate was skipped instead.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

TRAJECTORY_SCHEMA = 1


class SpeedupGateError(AssertionError):
    """A parallel entry fell below its required speedup over workers=1."""


def load_trajectory(path: str) -> Dict[str, Any]:
    """Read a trajectory file, or a fresh empty one if absent."""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return {"schema": TRAJECTORY_SCHEMA, "benchmark": {}, "entries": []}


def write_trajectory(path: str, data: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def append_trajectory_entry(
    path: str,
    label: str,
    params: Dict[str, Any],
    values: Dict[str, Any],
    workers: Optional[int] = None,
    speedup_from: Optional[str] = None,
    extra: Optional[dict] = None,
    min_speedup_vs_workers1: Optional[float] = None,
) -> Dict[str, Any]:
    """Record one measurement in ``path``; returns the stored entry.

    Args:
        path: the BENCH_*.json trajectory file.
        label: entry label (re-recording a label replaces in place).
        params: the scenario parameters the measurement is valid for.
        values: the measured fields, stored verbatim on the entry.
        workers: worker count, when the kernel has a worker knob; part of
            the entry identity and of the baseline rule.
        speedup_from: name of a seconds field in ``values`` to compare
            against the first same-params ``workers == 1`` entry.
        extra: optional additional fields merged into the entry.
        min_speedup_vs_workers1: required speedup floor for parallel
            (``workers > 1``) entries. Raises :class:`SpeedupGateError`
            without recording when the measured speedup falls below it.
            Armed only when ``os.cpu_count() >= workers``; on smaller
            machines the entry records ``speedup_gate: "skipped: ..."``.

    Raises:
        SpeedupGateError: the entry is parallel, the gate is armed, and
            ``speedup_vs_baseline`` is below ``min_speedup_vs_workers1``.
    """
    data = load_trajectory(path)
    if not data["entries"]:
        data["benchmark"] = dict(params)
    entry: Dict[str, Any] = {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": dict(params),
    }
    if workers is not None:
        entry["workers"] = workers
        entry["cores"] = os.cpu_count() or 1
    entry.update(values)
    if speedup_from is not None:
        baseline = next(
            (
                e
                for e in data["entries"]
                if e["params"] == params and e.get("workers") == 1
            ),
            None,
        )
        if baseline is not None and baseline["label"] == label and workers == 1:
            baseline = None  # re-recording the baseline itself: no self-speedup
        seconds = entry.get(speedup_from)
        if baseline is not None and seconds:
            entry["speedup_vs_baseline"] = round(
                baseline[speedup_from] / seconds, 2
            )
    if min_speedup_vs_workers1 is not None and workers is not None and workers > 1:
        cores = entry.get("cores") or os.cpu_count() or 1
        speedup = entry.get("speedup_vs_baseline")
        if cores < workers:
            entry["speedup_gate"] = (
                f"skipped: {cores} cores < {workers} workers"
            )
        elif speedup is None:
            entry["speedup_gate"] = "skipped: no workers=1 baseline"
        elif speedup < min_speedup_vs_workers1:
            raise SpeedupGateError(
                f"{label!r} at workers={workers}: speedup "
                f"{speedup}x vs workers=1 is below the "
                f"min_speedup_vs_workers1={min_speedup_vs_workers1}x floor "
                f"({cores} cores available) — entry not recorded"
            )
        else:
            entry["speedup_gate"] = f"passed: >= {min_speedup_vs_workers1}x"
    if extra:
        entry.update(extra)

    def identity(e: Dict[str, Any]):
        if workers is None:
            return e["label"]
        return (e["label"], e["params"], e.get("workers"))

    target = identity(entry)
    existing = next(
        (i for i, e in enumerate(data["entries"]) if identity(e) == target),
        None,
    )
    if existing is not None:
        data["entries"][existing] = entry
    else:
        data["entries"].append(entry)
    write_trajectory(path, data)
    return entry
