"""The streaming-ECO benchmark feeding ``BENCH_streaming.json``.

Each run replays a seeded ECO trace against one registered workload
tier through the incremental planning service and records what the
workload subsystem measures: steady-state incremental speedup versus
per-event full re-planning, per-event latency percentiles, the
divergence count at the full-replan checkpoints, and the trace's
signature digest (the determinism fingerprint — the same tier, trace
seed, and worker count must reproduce it byte for byte).

The acceptance workload is the ``ladder-64`` tier (64x64, 2k nets);
``--fast`` runs the ``smoke-16`` tier for CI. The recorded
``steady_speedup`` is gated as a higher-is-better metric and
``event_p95`` as a lower-is-better one by
:mod:`repro.benchmarks.perf_gate`.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, Optional

from repro.benchmarks.emit import append_trajectory_entry, load_trajectory
from repro.workloads import TraceOptions, run_workload_trace

#: Default location of the trajectory file, relative to the repo root.
DEFAULT_TRAJECTORY = os.path.join("benchmarks", "BENCH_streaming.json")

#: Acceptance tier and trace shape (the ROADMAP's streaming target).
DEFAULT_WORKLOAD = "ladder-64"
DEFAULT_EVENTS = 40
DEFAULT_CHECKPOINT = 10


def run_streaming_kernel(
    workload: str = DEFAULT_WORKLOAD,
    events: int = DEFAULT_EVENTS,
    seed: int = 0,
    checkpoint_every: int = DEFAULT_CHECKPOINT,
    workers: int = 1,
) -> Dict[str, Any]:
    """Replay one tier's trace and reduce the report to trajectory values.

    Returns ``{"params": ..., "values": ...}`` ready for
    :func:`append_streaming_entry`. The values carry the full quality
    contract: a nonzero ``divergences`` means the incremental engine
    drifted from scratch re-planning and the kernel's exit code flags
    it.
    """
    options = TraceOptions(
        events=events,
        seed=seed,
        checkpoint_every=checkpoint_every,
        workers=workers,
    )
    report = run_workload_trace(workload, options)
    pct = report.latency_percentiles()
    speedup = report.steady_speedup()
    return {
        "params": {
            "workload": workload,
            "events": events,
            "seed": seed,
            "checkpoint_every": checkpoint_every,
        },
        "values": {
            "steady_speedup": (
                round(speedup, 4) if speedup is not None else None
            ),
            "event_p50": round(pct["event_p50"], 6),
            "event_p95": round(pct["event_p95"], 6),
            "event_p99": round(pct["event_p99"], 6),
            "divergences": report.divergences,
            "checkpoints": len(report.checkpoints),
            "signature_digest": report.signature_digest(),
            "baseline_seconds_full": round(
                float(report.baseline.get("seconds_full") or 0.0), 4
            ),
            "baseline_buffers": report.baseline.get("buffers"),
            "wall_seconds": round(report.wall_seconds, 4),
        },
    }


def append_streaming_entry(
    path: str,
    label: str,
    measurement: Dict[str, Any],
    workers: int = 1,
    extra: Optional[dict] = None,
) -> dict:
    """Record one streaming measurement; same (params, workers) replaces."""
    return append_trajectory_entry(
        path,
        label,
        measurement["params"],
        measurement["values"],
        workers=workers,
        extra=extra,
    )


def load_streaming_trajectory(path: str) -> dict:
    return load_trajectory(path)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks.streaming_kernel",
        description="Replay a streaming ECO trace against a workload tier "
        "and append the measurement to the BENCH_streaming.json "
        "trajectory.",
    )
    parser.add_argument("--label", required=True, help="entry label")
    parser.add_argument("--out", default=DEFAULT_TRAJECTORY)
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke-16 tier with a short trace for CI",
    )
    args = parser.parse_args(argv)
    workload = args.workload
    events = args.events
    checkpoint_every = args.checkpoint_every
    if args.fast:
        workload, events, checkpoint_every = "smoke-16", 20, 10
    measurement = run_streaming_kernel(
        workload=workload,
        events=events,
        seed=args.seed,
        checkpoint_every=checkpoint_every,
        workers=args.workers,
    )
    entry = append_streaming_entry(
        args.out, args.label, measurement, workers=args.workers
    )
    print(json.dumps(entry, indent=2))
    values = measurement["values"]
    print(
        f"{workload}: steady_speedup={values['steady_speedup']}x "
        f"p50={values['event_p50']:.3f}s p95={values['event_p95']:.3f}s "
        f"divergences={values['divergences']}/{values['checkpoints']}"
    )
    return 0 if values["divergences"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
