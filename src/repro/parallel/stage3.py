"""Stage-3 buffering batches on the shared-memory worker pool.

The parent publishes the flat ``B(v)``/``b(v)`` site vectors and the
``p(v)`` field before each tile-disjoint batch; workers rebuild each
net's tree from its compact wire form, gather the Eq. (2) cost over the
net's own tiles straight from the shared views, and run the (pure)
buffering solver. Proposals travel back as plain spec tuples; all
committing — ledger transactions, greedy fallback, accounting — stays in
the parent, serially, in net order.

Byte-identity: a batch's nets have pairwise-disjoint tile sets, so at
net *i*'s sequential turn the only ``b(v)``/``p(v)`` differences vs. the
published snapshot are on *other* nets' tiles (earlier commits book only
their own spec tiles; ``p`` removal touches only the removed net's
tiles). The worker subtracts net *i*'s own ``p`` contribution with the
exact FP operations of ``UsageProbability.remove_net``, so the gathered
costs — and hence the solver proposal — are bit-identical to what the
sequential loop computes.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.candidates import INF
from repro.parallel.runtime import graph_geometry, worker_graph, worker_solver
from repro.parallel.shm import SharedArrayRegistry
from repro.parallel.stage2 import _chunk, rebuild_tree, tree_parent_pairs
from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph.graph import TileGraph

HANDLER = "repro.parallel.stage3:solve_nets"


class Stage3Session:
    """Parent-side state for one buffer-assignment run."""

    def __init__(
        self,
        pool,
        graph: TileGraph,
        probability,
        technology=None,
        buffer_library: str = "single",
    ):
        self.pool = pool
        self.graph = graph
        self.probability = probability
        self.registry = SharedArrayRegistry(prefix="s3")
        self._geom = graph_geometry(graph)
        self._tech = asdict(technology) if technology is not None else None
        self._library = buffer_library

    def close(self) -> None:
        self.registry.close()

    def solve_batch(
        self,
        batch: Sequence[str],
        routes: Dict[str, RouteTree],
        length_limits: Dict[str, int],
        solver_name_of: Callable[[str], str],
    ) -> Dict[str, "SolveOutcome"]:
        """Solve a tile-disjoint batch on the pool; nothing is committed.

        Must be called *before* the batch's ``p(v)`` contributions are
        removed in the parent — workers subtract their own net's weight
        from the published snapshot. Raises
        :class:`repro.parallel.pool.PoolError` when the pool cannot
        deliver (the caller falls back to sequential solve-and-commit).
        """
        from repro.core.solver import SolveOutcome

        sites_spec = self.registry.publish("sites", self.graph.sites_flat)
        used_spec = self.registry.publish("used", self.graph.used_sites_flat)
        p_spec = None
        if self.probability is not None:
            p_spec = self.registry.publish("p", self.probability.field_flat)
        nets = [
            (
                name,
                routes[name].source,
                tree_parent_pairs(routes[name]),
                routes[name].sink_tiles,
                length_limits[name],
                solver_name_of(name),
            )
            for name in batch
        ]
        payloads = [
            {
                "geom": self._geom,
                "sites": sites_spec,
                "used": used_spec,
                "p": p_spec,
                "tech": self._tech,
                "library": self._library,
                "nets": chunk,
            }
            for chunk in _chunk(nets, self.pool.workers)
        ]
        out: Dict[str, SolveOutcome] = {}
        for reply in self.pool.map(HANDLER, payloads, retries=2):
            for name, specs, cost, feasible, solver in reply:
                out[name] = SolveOutcome(
                    specs=[
                        BufferSpec(tile, drives_child, kind)
                        for tile, drives_child, kind in specs
                    ],
                    cost=cost,
                    feasible=feasible,
                    solver=solver,
                )
        return out


def solve_nets(payload, ctx):
    """Pool handler: solve a chunk of nets against the published state.

    Returns ``[(name, specs, cost, feasible, solver), ...]`` with specs
    as ``(tile, drives_child, kind)`` tuples.
    """
    from repro.core.solver import SolveRequest

    graph = worker_graph(payload["geom"], ctx)
    sites = ctx.attachments.view(payload["sites"])
    used = ctx.attachments.view(payload["used"])
    p = ctx.attachments.view(payload["p"]) if payload["p"] is not None else None
    # Solvers are pure, but the van Ginneken DP reads the graph's
    # geometry and site state — keep the replica coherent.
    graph.sites_flat[:] = sites
    graph.used_sites_flat[:] = used
    tech = payload["tech"]
    library = payload.get("library", "single")
    out = []
    for name, source, pairs, sinks, limit, solver_name in payload["nets"]:
        tree = rebuild_tree(source, pairs, sinks, name)
        idx = tree.tile_indices(graph.ny)
        s = sites[idx]
        u = used[idx]
        if p is not None:
            # Exactly UsageProbability.remove_net for this net's own
            # contribution: subtract, clamp at zero — then the Eq. (2)
            # numerator in Stage3CostField.cost_map's operation order.
            values = p[idx] - 1.0 / limit
            np.maximum(values, 0.0, out=values)
            numerator = u + values + 1.0
        else:
            numerator = u + 1.0
        q = np.full(len(idx), INF)
        np.divide(numerator, s - u, out=q, where=(s > 0) & (u < s))
        cost_of = dict(zip(tree.nodes, q.tolist())).__getitem__
        solver = worker_solver(solver_name, tech, ctx, library=library)
        outcome = solver.solve(
            SolveRequest(
                graph=graph,
                tree=tree,
                length_limit=limit,
                cost_of=cost_of,
                tracer=None,
            )
        )
        out.append(
            (
                name,
                [
                    (spec.tile, spec.drives_child, spec.kind)
                    for spec in outcome.specs
                ],
                outcome.cost,
                outcome.feasible,
                outcome.solver,
            )
        )
    return out
