"""Fault-injection handlers for exercising the worker pool.

These run *inside* pool workers (dispatched like any other handler) and
simulate the failure modes the pool must contain: a worker killed
mid-task, a reply too large for the parent's bound, a reply that does
not unpickle. Kill-style handlers are gated by a flag file so the
respawned worker's retry succeeds — exactly the transient-crash shape
the pool is designed for.
"""

from __future__ import annotations

import os
import signal
import time


def echo(payload, ctx):
    """Return the payload unchanged (smoke checks, chunking tests)."""
    return payload


def read_context(payload, ctx):
    """Return the worker's pool-level context object."""
    return ctx.context


def sleep_then_echo(payload, ctx):
    """Sleep ``payload['seconds']`` then echo (timeout tests)."""
    time.sleep(payload["seconds"])
    return payload.get("value")


def kill_self_once(payload, ctx):
    """SIGKILL this worker the first time; succeed on retry.

    ``payload['flag']`` is a path shared across the worker and its
    respawned successor: its existence marks "already crashed once".
    """
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as fh:
            fh.write("crashed")
        os.kill(os.getpid(), signal.SIGKILL)
    return payload.get("value", "survived")


def crash_always(payload, ctx):
    """SIGKILL this worker on every attempt (retry-exhaustion tests)."""
    os.kill(os.getpid(), signal.SIGKILL)


def oversized_reply(payload, ctx):
    """Reply with ``payload['nbytes']`` raw bytes (reply-bound tests)."""
    return bytes(payload["nbytes"])


def raise_error(payload, ctx):
    """Raise a deterministic handler error (error-status tests)."""
    raise ValueError(payload.get("message", "injected failure"))


def _explode():
    raise RuntimeError("poisoned reply")


class _Poison:
    """Pickles fine in the worker, explodes when the parent unpickles."""

    def __reduce__(self):
        return (_explode, ())


def poison_reply(payload, ctx):
    """Return an object whose unpickling fails parent-side."""
    return _Poison()


def read_shared(payload, ctx):
    """Attach ``payload['spec']`` and return its bytes (shm round-trip)."""
    view = ctx.attachments.view(payload["spec"])
    return view.tobytes()
