"""Shared-memory array registry: zero-pickle state shipping to workers.

The flat planning state — ``TileGraph.edge_usage``/``edge_capacity``, the
``SiteLedger``'s ``used``/``capacity`` site vectors, the ``p(v)`` field —
already lives in contiguous NumPy arrays. The worker pool ships that
state per batch by *memcpy into a shared segment* instead of pickling:
the parent publishes each array once into a ``multiprocessing``
shared-memory block and re-publishes (re-copies, version bump) before
every batch; workers attach the block once, cache the attachment by
``(name, generation)``, and rebuild only a NumPy *view* per batch.

Two stamps ride on every published array:

* ``generation`` — bumped when the block itself is reallocated (shape or
  dtype changed, so the old mapping is useless). A worker seeing a new
  generation detaches the stale block and attaches the new one.
* ``version`` — bumped on every publish into an existing block. Workers
  use it to invalidate derived state (e.g. a cost cache computed from a
  previous batch's usage) without re-attaching.

Attach/detach lifecycle: the parent owns every segment and unlinks them
all in :meth:`SharedArrayRegistry.close`; workers only ever open
existing segments. On Python < 3.13 an attaching process would register
the segment with the ``resource_tracker``, which unlinks it when the
tracked process exits — fatal for a pool that respawns crashed workers —
so :func:`attach_segment` suppresses the registration during the attach
(equivalent to 3.13's ``track=False``).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Process-wide segment-name uniquifier (registries may coexist).
_SEGMENT_IDS = itertools.count(1)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing shared-memory block without tracker ownership.

    Attaching must never transfer cleanup responsibility: the parent
    that created the block unlinks it. ``track=False`` (3.13+) says so
    directly; older interpreters need the explicit unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Forked workers share the parent's resource_tracker process, so
        # sending an UNREGISTER after the fact would erase the *parent's*
        # claim (its eventual unlink then logs a KeyError in the
        # tracker). Suppress the registration instead: while this attach
        # runs, shared_memory registrations are swallowed.
        from multiprocessing import resource_tracker

        real_register = resource_tracker.register

        def _suppressed(name_, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                real_register(name_, rtype)

        resource_tracker.register = _suppressed
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = real_register


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a worker needs to view one published array.

    Specs are tiny and travel inside batch messages; the array bytes
    never do.
    """

    name: str
    shm_name: str
    shape: Tuple[int, ...]
    dtype: str
    generation: int
    version: int

    @property
    def nbytes(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n * np.dtype(self.dtype).itemsize


class SharedArrayRegistry:
    """Parent-side catalogue of named arrays published to the pool.

    ``publish`` copies the array's current contents into the segment —
    a memcpy measured in microseconds for the grid sizes the planner
    uses — so workers always read a self-consistent snapshot and the
    parent's live arrays are never aliased across processes (the graph's
    observer/ledger machinery keeps working untouched).
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._specs: Dict[str, SharedArraySpec] = {}
        self._counter = 0
        self.publishes = 0
        self.reallocations = 0

    def publish(self, name: str, array: np.ndarray) -> SharedArraySpec:
        """Copy ``array`` into the named segment; returns the new spec.

        Same shape and dtype reuse the existing block (version bump);
        anything else reallocates under a fresh generation.
        """
        array = np.ascontiguousarray(array)
        spec = self._specs.get(name)
        if spec is not None and (
            spec.shape != array.shape or spec.dtype != str(array.dtype)
        ):
            self._release(name)
            spec = None
        if spec is None:
            self._counter += 1
            generation = self._counter
            shm = shared_memory.SharedMemory(
                create=True,
                size=max(1, array.nbytes),
                name=f"{self._prefix}_{os.getpid()}_{next(_SEGMENT_IDS)}",
            )
            self._segments[name] = shm
            self.reallocations += 1
            spec = SharedArraySpec(
                name=name,
                shm_name=shm.name,
                shape=array.shape,
                dtype=str(array.dtype),
                generation=generation,
                version=0,
            )
        shm = self._segments[name]
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        spec = SharedArraySpec(
            name=spec.name,
            shm_name=spec.shm_name,
            shape=spec.shape,
            dtype=spec.dtype,
            generation=spec.generation,
            version=spec.version + 1,
        )
        self._specs[name] = spec
        self.publishes += 1
        return spec

    def spec(self, name: str) -> SharedArraySpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(f"no published array named {name!r}")

    def specs(self) -> Dict[str, SharedArraySpec]:
        return dict(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def view(self, name: str) -> np.ndarray:
        """A parent-side NumPy view of the named segment's live bytes.

        Long-lived parents (the fleet scheduler) use this to *read back*
        state that attached workers wrote into the segment — e.g. the
        committed usage vectors a shard exports after each plan — without
        any pickling. The view aliases shared memory: concurrent worker
        writes are visible immediately, so treat reads as advisory
        snapshots unless the writer is known quiescent.
        """
        spec = self.spec(name)
        shm = self._segments[name]
        return np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf)

    def release(self, name: str) -> None:
        """Unlink one named segment (e.g. a retired fleet baseline)."""
        if name not in self._specs:
            raise ConfigurationError(f"no published array named {name!r}")
        self._release(name)

    def _release(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        self._specs.pop(name, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Unlink every published segment (workers' attachments survive
        until they detach; the OS reclaims the memory when the last
        mapping closes)."""
        for name in list(self._segments):
            self._release(name)

    def __enter__(self) -> "SharedArrayRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachmentCache:
    """Worker-side cache of attached segments, keyed by generation.

    ``view(spec)`` returns a NumPy view of the published bytes. A spec
    whose ``(shm_name, generation)`` was seen before reuses the existing
    mapping (counted in ``reuses`` — the pool surfaces the total as the
    ``pool.attach_reuse`` counter); a new generation detaches the stale
    block first.
    """

    def __init__(self) -> None:
        self._attached: Dict[str, Tuple[int, shared_memory.SharedMemory]] = {}
        self.attaches = 0
        self.reuses = 0

    def view(self, spec: SharedArraySpec) -> np.ndarray:
        entry = self._attached.get(spec.name)
        if entry is not None and entry[0] == spec.generation:
            shm = entry[1]
            self.reuses += 1
        else:
            if entry is not None:
                try:
                    entry[1].close()
                except Exception:  # pragma: no cover - best effort
                    pass
            shm = attach_segment(spec.shm_name)
            self._attached[spec.name] = (spec.generation, shm)
            self.attaches += 1
        return np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf)

    def array(self, spec: SharedArraySpec) -> np.ndarray:
        """A private copy of the published bytes (safe to mutate)."""
        return self.view(spec).copy()

    def close(self) -> None:
        for _, shm in self._attached.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - best effort
                pass
        self._attached.clear()

    def take_stats(self) -> Dict[str, int]:
        """Drain the attach counters (reported per batch reply)."""
        stats = {"attaches": self.attaches, "attach_reuse": self.reuses}
        self.attaches = 0
        self.reuses = 0
        return stats
