"""Shared-memory worker pool for the flat planning kernels.

Layers:

* :mod:`repro.parallel.shm` — named shared-memory arrays with
  generation/version stamps (publish parent-side, view worker-side).
* :mod:`repro.parallel.pool` — a persistent forked worker pool with
  crash detection, respawn, retries and per-task timeouts.
* :mod:`repro.parallel.stage2` / :mod:`repro.parallel.stage3` — the
  Stage-2 reroute and Stage-3 buffering batch sessions built on both.
"""

from repro.parallel.pool import PoolError, PoolWorker, TaskResult, WorkerPool
from repro.parallel.shm import (
    AttachmentCache,
    SharedArrayRegistry,
    SharedArraySpec,
    attach_segment,
)
from repro.parallel.stage2 import Stage2Session
from repro.parallel.stage3 import Stage3Session

__all__ = [
    "AttachmentCache",
    "PoolError",
    "PoolWorker",
    "SharedArrayRegistry",
    "SharedArraySpec",
    "Stage2Session",
    "Stage3Session",
    "TaskResult",
    "WorkerPool",
    "attach_segment",
]
