"""Persistent worker pool over pipes + shared-memory state.

One pool outlives many batches: workers are forked once, handlers are
resolved once per worker, and big read-only state travels through the
:mod:`repro.parallel.shm` registry instead of per-batch pickling. That
is the fix for the recorded parallel regression — the old per-batch
thread/fork paths paid their setup cost on every batch and never
amortized it.

Protocol (all frames are ``pickle`` bytes over a duplex pipe):

* parent -> worker: ``(seq, handler, payload)`` where ``handler`` is a
  ``"module:function"`` import string resolved (and cached) worker-side.
* worker -> parent: ``(seq, status, value, stats)`` with ``status`` of
  ``"ok"`` or ``"error"`` (the handler raised; ``value`` is the message),
  and ``stats`` the worker's drained attach counters.

Crash containment: a worker that dies mid-task (SIGKILL, segfault,
``os._exit``) surfaces as EOF on its pipe; a reply that fails to
unpickle or exceeds ``max_reply_bytes`` is treated the same way. In
every case the worker is killed and respawned (``pool.respawns``), and
the task is retried up to ``retries`` extra times before its
:class:`TaskResult` reports the failure. The sequence number guards
against a stale reply from a worker that was about to be killed.

Counters (also mirrored into the tracer when one is supplied):
``pool.dispatches``, ``pool.respawns``, ``pool.attaches``,
``pool.attach_reuse``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import time
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.parallel.shm import AttachmentCache

#: Replies larger than this are treated as poisoned (worker respawned).
DEFAULT_MAX_REPLY_BYTES = 64 * 1024 * 1024


class PoolError(ReproError):
    """A pool task failed past its retry budget (raising callers only)."""


@dataclass
class TaskResult:
    """Outcome of one task after retries.

    ``status`` is ``"ok"`` (``value`` holds the handler's return),
    ``"error"`` (the handler raised deterministically), ``"crashed"``
    (the worker process died or replied garbage), or ``"timeout"``.
    """

    status: str
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class WorkerContext:
    """Per-worker state handed to every handler invocation."""

    def __init__(self, payload: Any) -> None:
        #: The pool's ``context`` argument, as seen after the fork.
        self.context = payload
        #: Shared-memory attachments (cached across batches).
        self.attachments = AttachmentCache()
        #: Free-form handler scratch space (graphs, caches, solvers...).
        self.scratch: Dict[str, Any] = {}


def _resolve_handler(spec: str, cache: Dict[str, Callable]) -> Callable:
    fn = cache.get(spec)
    if fn is None:
        module, _, name = spec.partition(":")
        if not module or not name:
            raise ConfigurationError(f"bad handler spec {spec!r}")
        fn = getattr(import_module(module), name)
        cache[spec] = fn
    return fn


def _worker_main(conn, context_payload) -> None:
    """Worker loop: run handlers until the parent sends ``None``."""
    # The parent owns this process's lifecycle through the pipe (a
    # ``None`` sentinel) and SIGKILL. Group-delivered SIGTERM/SIGINT —
    # systemd's control-group kill, a terminal Ctrl-C — must not take
    # workers down mid-drain while the parent is still checkpointing.
    for _sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(_sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    ctx = WorkerContext(context_payload)
    handlers: Dict[str, Callable] = {}
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                return
            if frame == b"":
                return
            message = pickle.loads(frame)
            if message is None:
                return
            seq, handler_spec, payload = message
            try:
                value = _resolve_handler(handler_spec, handlers)(payload, ctx)
                reply = (seq, "ok", value, ctx.attachments.take_stats())
            except BaseException as exc:  # noqa: BLE001 - report, stay alive
                reply = (
                    seq,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    ctx.attachments.take_stats(),
                )
            try:
                frame = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:  # unpicklable handler return
                frame = pickle.dumps(
                    (
                        reply[0],
                        "error",
                        f"unpicklable reply: {type(exc).__name__}: {exc}",
                        ctx.attachments.take_stats(),
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            try:
                conn.send_bytes(frame)
            except (OSError, BrokenPipeError):
                return
    finally:
        ctx.attachments.close()


class _Worker:
    """One pool process plus its parent-side pipe, task slot, deadline."""

    __slots__ = ("conn", "proc", "seq", "task", "deadline", "started")

    def __init__(self, ctx, context_payload) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn, context_payload), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.seq: Optional[int] = None
        self.task = None  # (index, handler, payload, attempt)
        self.deadline: Optional[float] = None
        self.started: float = 0.0

    @property
    def idle(self) -> bool:
        return self.task is None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            # SIGKILL, not SIGTERM: workers ignore SIGTERM so that
            # group-delivered shutdown signals can't race the parent's
            # drain, which makes terminate() a no-op here.
            self.proc.kill()
        self.proc.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self.conn.send_bytes(pickle.dumps(None))
            self.conn.close()
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.kill()
            self.proc.join(timeout=5.0)


#: Public alias for builders of custom dispatch loops (the service
#: fleet owns one persistent worker per shard and drives it directly —
#: same fork/pipe/kill containment, different scheduling policy).
PoolWorker = _Worker


class WorkerPool:
    """A persistent pool of forked workers executing named handlers.

    Created lazily: processes fork on the first :meth:`run_tasks` call,
    so parent-side state built before that (baseline plans, monkey-
    patches, the graph CSR) is inherited for free under the Linux
    ``fork`` start method.
    """

    def __init__(
        self,
        workers: int,
        context: Any = None,
        tracer=None,
        max_reply_bytes: int = DEFAULT_MAX_REPLY_BYTES,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("pool workers must be >= 1")
        self.workers = workers
        self.tracer = tracer
        self.max_reply_bytes = max_reply_bytes
        self._context_payload = context
        self._ctx = multiprocessing.get_context("fork")
        self._pool: List[_Worker] = []
        self._seq = 0
        self._closed = False
        #: Lifetime counters (also mirrored into the tracer).
        self.counters: Dict[str, int] = {
            "pool.dispatches": 0,
            "pool.respawns": 0,
            "pool.attaches": 0,
            "pool.attach_reuse": 0,
        }

    # -- lifecycle ------------------------------------------------------ #

    def _count(self, name: str, value: int = 1) -> None:
        if not value:
            return
        self.counters[name] = self.counters.get(name, 0) + value
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.count(name, value)

    def _spawn(self) -> _Worker:
        return _Worker(self._ctx, self._context_payload)

    def _ensure_started(self, needed: int) -> None:
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        while len(self._pool) < min(self.workers, max(1, needed)):
            self._pool.append(self._spawn())

    def close(self) -> None:
        """Shut every worker down; the pool cannot be reused after."""
        self._closed = True
        for worker in self._pool:
            worker.shutdown()
        del self._pool[:]

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------ #

    def run_tasks(
        self,
        tasks: List[Tuple[str, Any]],
        timeout_s: Optional[float] = None,
        retries: int = 1,
        on_result: Optional[Callable[[int, TaskResult], None]] = None,
        on_retry: Optional[Callable[[int], None]] = None,
    ) -> List[TaskResult]:
        """Run ``(handler, payload)`` tasks; results are in task order.

        Tasks are dispatched in submission order to idle workers. A
        crashed/timed-out/raising task is retried ``retries`` extra
        times (``on_retry`` fires per retry); the final failure is
        *recorded*, never raised — callers that want exceptions use
        :meth:`map`. ``on_result`` streams results in completion order.
        """
        if not tasks:
            return []
        self._ensure_started(len(tasks))
        from multiprocessing.connection import wait as conn_wait

        results: List[Optional[TaskResult]] = [None] * len(tasks)
        queue: List[Tuple[int, str, Any, int]] = [
            (i, handler, payload, 1)
            for i, (handler, payload) in enumerate(tasks)
        ]
        queue.reverse()  # pop() consumes in submission order
        in_flight = 0

        def finish(index: int, result: TaskResult) -> None:
            results[index] = result
            if on_result is not None:
                on_result(index, result)

        def assign(worker: _Worker, task) -> None:
            nonlocal in_flight
            self._seq += 1
            worker.seq = self._seq
            worker.task = task
            worker.started = time.perf_counter()
            worker.deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
            frame = pickle.dumps(
                (worker.seq, task[1], task[2]),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            worker.conn.send_bytes(frame)
            self._count("pool.dispatches")
            in_flight += 1

        def settle(worker: _Worker, status: str, value, error) -> None:
            """Release the worker's slot; retry or record its task."""
            nonlocal in_flight
            index, _handler, _payload, attempt = worker.task
            elapsed = time.perf_counter() - worker.started
            worker.task, worker.deadline, worker.seq = None, None, None
            in_flight -= 1
            if status == "ok":
                finish(
                    index,
                    TaskResult("ok", value=value, seconds=elapsed, attempts=attempt),
                )
                return
            if attempt <= retries:
                if on_retry is not None:
                    on_retry(index)
                queue.append((index, _handler, _payload, attempt + 1))
                return
            finish(
                index,
                TaskResult(status, error=error, seconds=elapsed, attempts=attempt),
            )

        def respawn(worker: _Worker) -> None:
            worker.kill()
            self._pool[self._pool.index(worker)] = self._spawn()
            self._count("pool.respawns")

        while queue or in_flight:
            for worker in self._pool:
                if queue and worker.idle:
                    assign(worker, queue.pop())
            busy = [w for w in self._pool if not w.idle]
            ready = conn_wait([w.conn for w in busy], timeout=0.05)
            now = time.monotonic()
            for worker in busy:
                if worker.conn in ready:
                    reply = None
                    try:
                        frame = worker.conn.recv_bytes(self.max_reply_bytes)
                        reply = pickle.loads(frame)
                        seq, status, value, stats = reply
                    except Exception:
                        # Dead worker, oversized frame, or a reply that
                        # does not unpickle into the protocol tuple (a
                        # poisoned reply may raise anything at load
                        # time): the worker's state is suspect either
                        # way.
                        settle(
                            worker, "crashed",
                            None, "worker process died or replied garbage",
                        )
                        respawn(worker)
                        continue
                    if seq != worker.seq:
                        # Stale reply from before a respawn cycle.
                        continue
                    if isinstance(stats, dict):
                        self._count("pool.attaches", int(stats.get("attaches", 0)))
                        self._count(
                            "pool.attach_reuse", int(stats.get("attach_reuse", 0))
                        )
                    if status == "ok":
                        settle(worker, "ok", value, None)
                    else:
                        settle(worker, "error", None, str(value))
                elif worker.expired(now):
                    settle(
                        worker, "timeout", None,
                        f"task exceeded {timeout_s}s",
                    )
                    respawn(worker)
                elif not worker.proc.is_alive():
                    settle(
                        worker, "crashed", None,
                        "worker process died or replied garbage",
                    )
                    respawn(worker)
        return [r for r in results if r is not None]

    def map(
        self,
        handler: str,
        payloads: List[Any],
        timeout_s: Optional[float] = None,
        retries: int = 1,
    ) -> List[Any]:
        """Run one handler over many payloads; raise on any failure.

        The strict front end for deterministic stages: a task that still
        fails after retries raises :class:`PoolError` (Stage 2/3 callers
        then fall back to the sequential path for the batch).
        """
        results = self.run_tasks(
            [(handler, p) for p in payloads],
            timeout_s=timeout_s,
            retries=retries,
        )
        values = []
        for i, result in enumerate(results):
            if not result.ok:
                raise PoolError(
                    f"pool task {i} {result.status} after "
                    f"{result.attempts} attempt(s): {result.error}"
                )
            values.append(result.value)
        return values
