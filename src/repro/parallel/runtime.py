"""Worker-side caches shared by the stage handlers.

Handlers run many batches in one worker process; the expensive per-batch
setup — a private :class:`TileGraph` replica (whose flat CSR the maze
router needs), instantiated buffering solvers — is cached in the worker's
scratch dict and keyed by the parameters that would invalidate it.
"""

from __future__ import annotations

from typing import Tuple

from repro.geometry import Rect
from repro.tilegraph.graph import TileGraph

#: ``((x0, y0, x1, y1), nx, ny)`` — everything needed to rebuild a graph
#: with the right geometry (die dims matter for ``edge_length_mm``).
Geometry = Tuple[Tuple[float, float, float, float], int, int]


def graph_geometry(graph: TileGraph) -> Geometry:
    die = graph.die
    return ((die.x0, die.y0, die.x1, die.y1), graph.nx, graph.ny)


def worker_graph(geom: Geometry, ctx) -> TileGraph:
    """The worker's private graph replica for ``geom`` (cached).

    The replica's usage/capacity/site arrays are meaningless until the
    handler copies the published shared-memory snapshot into them; only
    the topology (and die geometry) is reused across batches.
    """
    cached = ctx.scratch.get("worker_graph")
    if cached is not None and cached[0] == geom:
        return cached[1]
    (x0, y0, x1, y1), nx, ny = geom
    graph = TileGraph(Rect(x0, y0, x1, y1), nx, ny)
    ctx.scratch["worker_graph"] = (geom, graph)
    return graph


def worker_solver(name: str, tech_dict, ctx, library: str = "single"):
    """A cached buffering solver for ``(name, technology, library)``."""
    key = (
        name,
        tuple(sorted(tech_dict.items())) if tech_dict else None,
        library,
    )
    solvers = ctx.scratch.setdefault("solvers", {})
    solver = solvers.get(key)
    if solver is None:
        from repro.core.solver import make_solver
        from repro.technology import Technology

        technology = Technology(**tech_dict) if tech_dict else None
        solver = solvers[key] = make_solver(
            name, technology=technology, buffer_library=library
        )
    return solver
