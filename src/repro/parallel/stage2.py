"""Stage-2 reroute batches on the shared-memory worker pool.

The parent rips up a box-disjoint batch, publishes the flat
``edge_usage``/``edge_capacity`` snapshot, and ships each worker only the
net endpoints; workers route against the snapshot on a private graph
replica and send back compact parent maps plus an *escalation flag* (the
search widened past its first window or fell back to the soft cost).

Byte-identity contract (why the pool path equals the sequential loop):

* Batch boxes are the nets' route boxes expanded by ``window_margin`` —
  the router's *first* search window. A non-escalated search reads only
  edges with both endpoints inside that window, so its reads live inside
  the net's own box.
* Batch boxes are pairwise disjoint and every batch member is ripped in
  the snapshot, so the only state differences vs. the sequential loop's
  view at net *i*'s turn (later members still routed, earlier members
  already rerouted) live outside box *i* — unless an earlier member was
  redone serially, which the commit loop tracks as a dirty tile set.
* A worker result is committed only when its search did not escalate and
  its box is clean; anything else is rerouted serially against the live
  graph, which is literally the sequential code path.

Either way each net ends up with exactly the tree the sequential loop
would have produced, at every worker count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.parallel.runtime import graph_geometry, worker_graph
from repro.parallel.shm import SharedArrayRegistry
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph

HANDLER = "repro.parallel.stage2:route_nets"

#: ``(child, parent)`` tile pairs — a route tree in wire format.
ParentPairs = List[Tuple[Tile, Tile]]


def tree_parent_pairs(tree: RouteTree) -> ParentPairs:
    """A tree's compact wire form (rebuild with ``from_parent_map``)."""
    return [(child, parent) for parent, child in tree.edges()]


def rebuild_tree(
    source: Tile, pairs: ParentPairs, sinks: Sequence[Tile], net_name: str
) -> RouteTree:
    """Inverse of :func:`tree_parent_pairs` — deterministic reconstruction."""
    parent = {child: par for child, par in pairs}
    return RouteTree.from_parent_map(source, parent, sinks, net_name=net_name)


class Stage2Session:
    """Parent-side state for one rip-up-and-reroute run.

    Owns the shared-array registry; the capacity vector is published once
    (it never changes during Stage 2) and the usage vector is re-published
    per batch, right after the batch is ripped up.
    """

    def __init__(self, pool, graph: TileGraph, options) -> None:
        self.pool = pool
        self.graph = graph
        self.options = options
        self.registry = SharedArrayRegistry(prefix="s2")
        self._geom = graph_geometry(graph)
        self._capacity_spec = None

    def close(self) -> None:
        self.registry.close()

    def route_batch(
        self, batch: Sequence[str], routes: Dict[str, RouteTree]
    ) -> Dict[str, Tuple[ParentPairs, bool]]:
        """Route a ripped-up batch on the pool.

        Returns ``{net: (parent_pairs, escalated)}``. Raises
        :class:`repro.parallel.pool.PoolError` when the pool cannot
        deliver (the caller falls back to serial rerouting).
        """
        usage_spec = self.registry.publish("usage", self.graph.edge_usage)
        if self._capacity_spec is None:
            self._capacity_spec = self.registry.publish(
                "capacity", self.graph.edge_capacity
            )
        nets = [
            (name, routes[name].source, routes[name].sink_tiles)
            for name in batch
        ]
        chunks = _chunk(nets, self.pool.workers)
        payloads = [
            {
                "geom": self._geom,
                "usage": usage_spec,
                "capacity": self._capacity_spec,
                "radius_weight": self.options.radius_weight,
                "window_margin": self.options.window_margin,
                "nets": chunk,
            }
            for chunk in chunks
        ]
        out: Dict[str, Tuple[ParentPairs, bool]] = {}
        for reply in self.pool.map(HANDLER, payloads, retries=2):
            for name, pairs, escalated in reply:
                out[name] = (pairs, escalated)
        return out


def _chunk(items: List, k: int) -> List[List]:
    """Split into at most ``k`` contiguous, near-even chunks."""
    k = max(1, min(k, len(items)))
    size, extra = divmod(len(items), k)
    chunks = []
    start = 0
    for i in range(k):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def route_nets(payload, ctx):
    """Pool handler: route a chunk of ripped-up nets against a snapshot.

    Returns ``[(name, parent_pairs, escalated), ...]``.
    """
    from repro.routing.maze import (
        congestion_cost,
        route_net_on_tiles,
        workspace_for,
    )

    graph = worker_graph(payload["geom"], ctx)
    graph.edge_capacity[:] = ctx.attachments.view(payload["capacity"])
    graph.edge_usage[:] = ctx.attachments.view(payload["usage"])
    graph.cost_cache().mark_all_dirty()
    workspace = workspace_for(graph)
    radius_weight = payload["radius_weight"]
    window_margin = payload["window_margin"]
    out = []
    for name, source, sinks in payload["nets"]:
        tree = route_net_on_tiles(
            graph,
            source,
            sinks,
            cost_fn=congestion_cost,
            radius_weight=radius_weight,
            net_name=name,
            window_margin=window_margin,
            workspace=workspace,
        )
        out.append(
            (
                name,
                tree_parent_pairs(tree),
                bool(getattr(tree, "search_escalated", True)),
            )
        )
    return out
